"""The declarative suite registry: shapes, labels and validation."""

from __future__ import annotations

import pytest

from repro.bench import SUITES, BenchSuite, ScenarioSpec, get_suite, list_suites
from repro.bench.suites import PAPER_CIRCUITS
from repro.circuits import get_spec, list_circuits


def test_the_seven_built_in_suites_exist():
    assert list_suites() == ["dedup-throughput", "fuzz-throughput",
                             "serve-load", "solver-micro", "sweep-scaling",
                             "table2", "table3"]


def test_paper_suites_cover_every_paper_circuit():
    # The generated regression workloads (gen100/gen120/gen140) are built
    # in but not part of the paper's evaluation grid.
    paper = {name for name in list_circuits()
             if get_spec(name).paper_max_sessions is not None}
    assert set(PAPER_CIRCUITS) == paper
    assert get_suite("table2").circuits == PAPER_CIRCUITS
    assert get_suite("table3").circuits == PAPER_CIRCUITS


def test_suite_unit_labels_are_stable():
    assert list(get_suite("solver-micro").unit_labels()) == \
        ["sweep:fig1", "sweep:paulin"]
    assert list(get_suite("sweep-scaling").unit_labels()) == \
        ["sweep:tseng", "sweep:fir6"]
    assert list(get_suite("fuzz-throughput").unit_labels()) == ["fuzz:c12:s0"]
    assert list(get_suite("serve-load").unit_labels()) == ["serve:fig1:c8x6"]
    # narrowing circuits narrows the labels the same way the runner does
    assert list(get_suite("table2").unit_labels(("fig1",))) == ["sweep:fig1"]


def test_warm_cache_scenarios_reuse_the_accel_cache():
    table2 = get_suite("table2")
    warm = {s.name: s for s in table2.scenarios}["warm_cache"]
    assert warm.reuses == "cold_accel"
    cold = {s.name: s for s in table2.scenarios}["cold_baseline"]
    assert cold.reuses is None


def test_get_suite_rejects_unknown_names():
    with pytest.raises(KeyError, match="unknown benchmark suite 'nope'"):
        get_suite("nope")


def test_scenario_spec_validation():
    with pytest.raises(ValueError, match="jobs must be >= 1"):
        ScenarioSpec("bad", jobs=0)
    with pytest.raises(ValueError, match="cache must be"):
        ScenarioSpec("bad", cache="sometimes")
    assert ScenarioSpec("ok", cache="reuse:other").reuses == "other"


def test_bench_suite_validation():
    scenario = ScenarioSpec("only")
    with pytest.raises(ValueError, match="no job kinds"):
        BenchSuite(name="x", description="", job_kinds=(),
                   scenarios=(scenario,))
    with pytest.raises(ValueError, match="unknown job kind"):
        BenchSuite(name="x", description="", job_kinds=("dance",),
                   scenarios=(scenario,))
    with pytest.raises(ValueError, match="no scenarios"):
        BenchSuite(name="x", description="", job_kinds=("sweep",),
                   scenarios=())
    with pytest.raises(ValueError, match="duplicate scenario"):
        BenchSuite(name="x", description="", job_kinds=("sweep",),
                   scenarios=(scenario, ScenarioSpec("only")))
    # the baseline scenario defaults to the first one
    suite = BenchSuite(name="x", description="", job_kinds=("sweep",),
                       scenarios=(ScenarioSpec("a"), ScenarioSpec("b")))
    assert suite.baseline_scenario == "a"


def test_suite_as_dict_is_json_friendly():
    import json

    for name in SUITES:
        encoded = json.dumps(get_suite(name).as_dict())
        assert name in encoded
