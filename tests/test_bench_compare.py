"""The regression gate: flattening, thresholds, verdicts, rendering."""

from __future__ import annotations

import pytest

from repro.bench import compare_reports, render_comparison, render_history
from repro.bench.compare import flatten_timings


def _report(units: dict[str, float], parity_ok: bool = True,
            max_k: int | None = None, time_limit: float = 120.0) -> dict:
    """A minimal schema-2-shaped report with one suite/one scenario."""
    per_scenario: dict[str, dict] = {}
    for key, seconds in units.items():
        scenario, _, label = key.partition("/")
        per_scenario.setdefault(scenario, {})[label] = seconds
    return {
        "parity_ok": parity_ok,
        "created_at": "2026-07-26T00:00:00+00:00",
        "environment": {"python": "3.12"},
        "config": {"time_limit": time_limit},
        "suites": {
            "test-suite": {
                "parity_ok": parity_ok,
                "config": {"baseline_scenario": "cold", "max_k": max_k},
                "speedups": {},
                "scenarios": {
                    scenario: {"scenario": scenario, "wall_seconds": sum(labels.values()),
                               "per_unit_seconds": labels}
                    for scenario, labels in per_scenario.items()
                },
            },
        },
    }


def test_flatten_timings_uses_scenario_unit_keys():
    report = _report({"cold/sweep:fig1": 0.5, "warm/sweep:fig1": 0.01})
    assert flatten_timings(report) == {"cold/sweep:fig1": 0.5,
                                       "warm/sweep:fig1": 0.01}


def test_regression_flagged_past_threshold():
    current = _report({"cold/sweep:a": 3.0})
    prior = _report({"cold/sweep:a": 1.0})
    comparison = compare_reports(current, [("prior.json", prior)],
                                 threshold=1.5)
    assert [row.status for row in comparison.rows] == ["regressed"]
    assert not comparison.ok
    assert comparison.regressions[0].prior_source == "prior.json"


def test_synthetic_slow_prior_passes_the_gate():
    """A fresh run faster than the prior is 'faster', never a failure."""
    current = _report({"cold/sweep:a": 1.0})
    slow_prior = _report({"cold/sweep:a": 30.0})
    comparison = compare_reports(current, [("slow.json", slow_prior)])
    assert [row.status for row in comparison.rows] == ["faster"]
    assert comparison.ok


def test_within_band_is_ok_and_new_units_are_reported():
    current = _report({"cold/sweep:a": 1.1, "cold/sweep:b": 2.0})
    prior = _report({"cold/sweep:a": 1.0})
    comparison = compare_reports(current, [("p", prior)], threshold=1.5)
    statuses = {row.unit: row.status for row in comparison.rows}
    assert statuses == {"cold/sweep:a": "ok", "cold/sweep:b": "new"}
    assert comparison.ok


def test_noise_floor_suppresses_micro_timings():
    current = _report({"cold/compare:a": 0.009})
    prior = _report({"cold/compare:a": 0.003})
    comparison = compare_reports(current, [("p", prior)],
                                 threshold=1.5, min_seconds=0.05)
    assert [row.status for row in comparison.rows] == ["noise"]
    assert comparison.ok
    # lowering the floor turns the same delta into a real regression
    strict = compare_reports(current, [("p", prior)],
                             threshold=1.5, min_seconds=0.0)
    assert not strict.ok


def test_best_prior_wins_across_many_files():
    current = _report({"cold/sweep:a": 2.0})
    slow = _report({"cold/sweep:a": 10.0})
    fast = _report({"cold/sweep:a": 1.0})
    comparison = compare_reports(
        current, [("slow.json", slow), ("fast.json", fast)], threshold=1.5)
    row = comparison.rows[0]
    assert (row.prior_seconds, row.prior_source) == (1.0, "fast.json")
    assert row.status == "regressed"


def test_parity_failure_fails_the_gate_even_when_fast():
    current = _report({"cold/sweep:a": 0.1}, parity_ok=False)
    prior = _report({"cold/sweep:a": 10.0})
    comparison = compare_reports(current, [("p", prior)])
    assert [row.status for row in comparison.rows] == ["faster"]
    assert not comparison.ok
    assert "PARITY FAILURE" in render_comparison(comparison)


def test_render_comparison_modes():
    current = _report({"cold/sweep:a": 3.0, "cold/sweep:b": 1.0})
    prior = _report({"cold/sweep:a": 1.0, "cold/sweep:b": 1.0})
    comparison = compare_reports(current, [("p", prior)], threshold=1.5)
    quiet = render_comparison(comparison)
    assert "cold/sweep:a" in quiet and "REGRESSED" in quiet
    assert "cold/sweep:b" not in quiet          # quiet mode: regressions only
    verbose = render_comparison(comparison, verbose=True)
    assert "cold/sweep:b" in verbose
    assert "1 ok, 1 regressed" in verbose.replace("  ", " ")


def test_render_comparison_with_nothing_to_compare():
    comparison = compare_reports(_report({}), [("p", _report({}))])
    text = render_comparison(comparison)
    assert "no regressions" in text


def test_render_history_lists_every_suite_row():
    prior = _report({"cold/sweep:a": 1.0})
    text = render_history([("a.json", prior), ("b.json", prior)])
    assert text.count("test-suite") == 2
    assert "a.json" in text and "b.json" in text


def test_colliding_suite_keys_gate_on_the_slowest_instance():
    """Two suites timing the same scenario/unit must not mask each other."""
    current = _report({"cold/sweep:a": 0.1})
    # second suite records the same key, slower
    current["suites"]["other-suite"] = {
        "parity_ok": True, "config": {}, "speedups": {},
        "scenarios": {"cold": {"scenario": "cold", "wall_seconds": 3.0,
                               "per_unit_seconds": {"sweep:a": 3.0}}},
    }
    prior = _report({"cold/sweep:a": 1.0})
    comparison = compare_reports(current, [("p", prior)], threshold=1.5)
    row = comparison.rows[0]
    assert row.current_seconds == 3.0          # max of the colliding pair
    assert row.status == "regressed"
    assert any("more than one suite" in warning
               for warning in comparison.warnings)


def test_workload_mismatch_is_warned_not_failed():
    """A narrowed max_k prior still gates, but the caveat is surfaced."""
    current = _report({"cold/sweep:a": 1.0}, max_k=None)
    narrowed = _report({"cold/sweep:a": 1.0}, max_k=2)
    comparison = compare_reports(current, [("narrow.json", narrowed)])
    assert comparison.ok
    assert len(comparison.warnings) == 1
    assert "max_k=2" in comparison.warnings[0]
    assert "cold/sweep:a" in comparison.warnings[0]
    assert "warning:" in render_comparison(comparison)
    # identical workloads stay silent
    same = compare_reports(current, [("same.json", _report({"cold/sweep:a": 1.0}))])
    assert same.warnings == []


def test_jobs_mismatch_is_warned():
    """A forced worker count changes every timing; the gate must say so."""
    current = _report({"cold/sweep:a": 1.0})
    parallel = _report({"cold/sweep:a": 1.0})
    for suite in parallel["suites"].values():
        for scenario in suite["scenarios"].values():
            scenario["jobs"] = 4
    comparison = compare_reports(current, [("par.json", parallel)])
    assert len(comparison.warnings) == 1
    assert "jobs=4" in comparison.warnings[0]


@pytest.mark.parametrize("flat", [True, False])
def test_compare_accepts_flat_and_structured_inputs(flat):
    current = {"cold/sweep:a": 2.0} if flat else _report({"cold/sweep:a": 2.0})
    prior = {"cold/sweep:a": 1.0} if flat else _report({"cold/sweep:a": 1.0})
    comparison = compare_reports(current, [("p", prior)], threshold=1.5)
    assert [row.status for row in comparison.rows] == ["regressed"]
