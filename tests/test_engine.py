"""Tests of the parallel sweep engine, the design cache and lowering parity."""

from __future__ import annotations

import pytest

from repro.core import (
    AdvBistFormulation,
    AdvBistSynthesizer,
    DesignCache,
    EngineError,
    ProcessExecutor,
    ReferenceFormulation,
    SerialExecutor,
    SweepEngine,
    SweepEntry,
    SweepResult,
)
from repro.cost.transistors import CostModel
from repro.ilp import SolveStatus, get_backend
from repro.reporting import compare_methods

TIME_LIMIT = 60.0

_TIMING_KEYS = ("solve_seconds", "wall_s")


def _rows_without_timing(result: SweepResult, stats: bool = False) -> list[dict]:
    return [{key: value for key, value in row.items() if key not in _TIMING_KEYS}
            for row in result.table2_rows(stats=stats)]


# ----------------------------------------------------------------------
# grid materialisation
# ----------------------------------------------------------------------
def test_sweep_grid_contains_reference_and_every_k(fig1_graph):
    engine = SweepEngine(time_limit=TIME_LIMIT)
    tasks = engine.sweep_grid([fig1_graph])
    assert [task.kind for task in tasks] == ["reference", "advbist", "advbist"]
    assert [task.k for task in tasks] == [None, 1, 2]
    assert tasks[0].label() == "fig1:reference"
    assert tasks[2].label() == "fig1:advbist:k=2"


def test_sweep_grid_respects_max_k(fig1_graph):
    engine = SweepEngine(time_limit=TIME_LIMIT)
    tasks = engine.sweep_grid([fig1_graph], max_k=1)
    assert [task.k for task in tasks] == [None, 1]


# ----------------------------------------------------------------------
# executors and parity
# ----------------------------------------------------------------------
def test_serial_and_parallel_sweeps_produce_identical_tables(fig1_graph):
    serial = SweepEngine(time_limit=TIME_LIMIT).sweep(fig1_graph)
    parallel = SweepEngine(time_limit=TIME_LIMIT, jobs=2).sweep(fig1_graph)
    assert _rows_without_timing(serial, stats=True) == _rows_without_timing(parallel, stats=True)
    assert serial.overheads() == parallel.overheads()
    assert serial.reference.area().total == parallel.reference.area().total


def test_explicit_executor_object_is_honoured(fig1_graph):
    class CountingExecutor(SerialExecutor):
        calls = 0

        def run(self, fn, tasks):
            CountingExecutor.calls += 1
            return super().run(fn, tasks)

    engine = SweepEngine(time_limit=TIME_LIMIT, executor=CountingExecutor())
    result = engine.sweep(fig1_graph)
    assert CountingExecutor.calls == 1
    assert len(result.entries) == 2


def test_process_executor_rejects_nonpositive_jobs():
    with pytest.raises(EngineError):
        ProcessExecutor(0)


def test_parallel_execution_requires_registry_backend():
    class ObjectBackend:
        def solve(self, form, time_limit=None, mip_gap=1e-6):
            raise NotImplementedError

    with pytest.raises(EngineError):
        SweepEngine(backend=ObjectBackend(), jobs=2)


def test_engine_rejects_unknown_backend_name():
    with pytest.raises(ValueError):
        SweepEngine(backend="definitely-not-a-solver")


# ----------------------------------------------------------------------
# the design cache
# ----------------------------------------------------------------------
def test_design_cache_serves_second_run_byte_identically(tmp_path, fig1_graph):
    cache = DesignCache(tmp_path / "cache")
    engine = SweepEngine(time_limit=TIME_LIMIT, cache=cache)
    first = engine.sweep(fig1_graph)
    assert all(not report.cached for report in first.reports)
    second = engine.sweep(fig1_graph)
    assert all(report.cached for report in second.reports)
    # cached designs replay the original solve, timing included
    assert first.table2_rows(stats=True) == second.table2_rows(stats=True)


def test_design_cache_key_sensitivity(tmp_path, fig1_graph, tseng_graph):
    cache = DesignCache(tmp_path)
    engine = SweepEngine(time_limit=TIME_LIMIT, cache=cache)
    base = engine.sweep_grid([fig1_graph])[1]          # advbist k=1
    other_k = engine.sweep_grid([fig1_graph])[2]       # advbist k=2
    other_graph = engine.sweep_grid([tseng_graph])[1]
    assert cache.key_for(base) == cache.key_for(engine.sweep_grid([fig1_graph])[1])
    assert cache.key_for(base) != cache.key_for(other_k)
    assert cache.key_for(base) != cache.key_for(other_graph)

    wide = CostModel(bit_width=16)
    wide_engine = SweepEngine(time_limit=TIME_LIMIT, cost_model=wide, cache=cache)
    assert cache.key_for(base) != cache.key_for(wide_engine.sweep_grid([fig1_graph])[1])

    bnb_engine = SweepEngine(time_limit=TIME_LIMIT, backend="bnb", cache=cache)
    assert cache.key_for(base) != cache.key_for(bnb_engine.sweep_grid([fig1_graph])[1])


def test_design_cache_clear_and_corrupt_entry(tmp_path, fig1_graph):
    cache = DesignCache(tmp_path)
    engine = SweepEngine(time_limit=TIME_LIMIT, cache=cache)
    engine.sweep(fig1_graph)
    assert cache.clear() == 3
    # a corrupt entry is treated as a miss, not an error
    task = engine.sweep_grid([fig1_graph])[0]
    key = cache.key_for(task)
    path = cache._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"not a pickle")
    assert cache.get(key) is None


def test_design_cache_default_root_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
    assert DesignCache().root == tmp_path / "env-cache"


def test_cache_stores_only_proven_optimal_ilp_designs(tmp_path, fig1_graph):
    import copy

    from repro.core.engine import TaskOutcome, _cacheable

    engine = SweepEngine(time_limit=TIME_LIMIT)
    ref_task, advbist_task, _ = engine.sweep_grid([fig1_graph])
    sweep = engine.sweep(fig1_graph)

    optimal = TaskOutcome(design=sweep.entries[0].design)
    assert _cacheable(advbist_task, optimal)
    unproven = TaskOutcome(design=copy.copy(sweep.entries[0].design))
    unproven.design.optimal = False
    assert not _cacheable(advbist_task, unproven)

    baseline_task = engine._task(fig1_graph, "baseline", k=1, method="ADVAN")
    assert _cacheable(baseline_task, unproven)


@pytest.mark.parametrize("payload", [
    b"cnot_a_real_module\nNope\n.",  # pickle referencing a missing module
    b"garbage\n",                     # arbitrary text (raises ValueError)
    b"",                              # truncated to nothing
    pytest.param(__import__("pickle").dumps({"not": "a TaskOutcome"}),
                 id="wrong-type"),
])
def test_cache_get_treats_bad_entries_as_miss_and_evicts(tmp_path, payload):
    cache = DesignCache(tmp_path)
    key = "ab" + "0" * 62
    path = cache._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(payload)
    assert cache.get(key) is None
    # the corrupt file is evicted so the miss is paid once, not forever
    assert not path.exists()


def test_corrupt_cache_entry_is_resolved_and_republished(tmp_path, fig1_graph):
    """A sweep over a corrupt entry re-solves it and heals the cache."""
    cache = DesignCache(tmp_path)
    engine = SweepEngine(time_limit=TIME_LIMIT, cache=cache)
    engine.sweep(fig1_graph)

    task = engine.sweep_grid([fig1_graph])[1]  # advbist k=1
    key = cache.key_for(task)
    path = cache._path(key)
    original = path.read_bytes()
    path.write_bytes(b"mangled bytes")
    # Drop the memory tier: this models a *fresh process* finding a corrupt
    # disk entry (in-process, the LRU would legitimately serve the design).
    cache.memory.clear()

    result = engine.sweep(fig1_graph)
    corrupted = [r for r in result.reports if r.kind == "advbist" and r.k == 1]
    assert corrupted and not corrupted[0].cached  # re-solved, not served
    # ... and the fresh solve re-published a loadable entry
    assert path.exists() and path.read_bytes() != b"mangled bytes"
    healed = cache.get(key)
    assert healed is not None and healed.cached
    assert len(original) > 0  # sanity: there was a real entry to corrupt


def test_failed_registration_leaves_no_phantom_names(backend_registry_snapshot):
    from repro.ilp import available_backend_names
    from repro.ilp.backends.registry import BackendRegistryError, register_backend

    with pytest.raises(BackendRegistryError):
        @register_backend("phantom-solver", aliases=("scipy",))
        class Phantom:  # pragma: no cover - never instantiated
            def solve(self, form, time_limit=None, mip_gap=1e-6):
                raise NotImplementedError

    assert "phantom-solver" not in available_backend_names()


# ----------------------------------------------------------------------
# thin wrappers
# ----------------------------------------------------------------------
def test_sweep_reuses_presolved_reference(fig1_graph):
    synthesizer = AdvBistSynthesizer(fig1_graph, time_limit=TIME_LIMIT)
    reference = synthesizer.synthesize_reference()

    class RecordingExecutor(SerialExecutor):
        tasks_seen: list = []

        def run(self, fn, tasks):
            RecordingExecutor.tasks_seen.extend(tasks)
            return super().run(fn, tasks)

    result = synthesizer.sweep(executor=RecordingExecutor())
    executed = [task.kind for chain in RecordingExecutor.tasks_seen
                for task in chain.tasks]
    assert executed == ["advbist", "advbist"]
    assert result.reference is reference



def test_synthesizer_sweep_is_engine_wrapper(fig1_graph):
    direct = SweepEngine(time_limit=TIME_LIMIT).sweep(fig1_graph)
    wrapped = AdvBistSynthesizer(fig1_graph, time_limit=TIME_LIMIT).sweep(jobs=2)
    assert _rows_without_timing(direct) == _rows_without_timing(wrapped)


def test_compare_methods_runs_through_engine(fig1_graph):
    result = compare_methods(fig1_graph, time_limit=TIME_LIMIT, jobs=2)
    assert result.winner() == "ADVBIST"
    assert len(result.reports) == 5  # reference + ADVBIST + three baselines
    kinds = {report.kind for report in result.reports}
    assert kinds == {"reference", "advbist", "baseline"}


def test_best_entry_tie_breaks_on_smallest_k(fig1_graph):
    sweep = SweepEngine(time_limit=TIME_LIMIT).sweep(fig1_graph)
    design = sweep.entries[-1].design
    reference_area = sweep.reference.area().total
    tied = SweepResult(
        circuit="fig1",
        reference=sweep.reference,
        entries=[
            SweepEntry(circuit="fig1", k=5, design=design, reference_area=reference_area),
            SweepEntry(circuit="fig1", k=2, design=design, reference_area=reference_area),
        ],
    )
    assert tied.best_entry().k == 2


# ----------------------------------------------------------------------
# sparse vs dense lowering parity on the paper's formulations
# ----------------------------------------------------------------------
def test_fig1_lowering_parity_across_backends(fig1_graph):
    """Sparse and dense lowerings of the fig1 ADVBIST model agree everywhere."""
    objectives = set()
    for backend_name in ("scipy", "bnb"):
        for sparse_form in (True, False):
            model = AdvBistFormulation(fig1_graph, 1).model
            form = model.to_matrix_form(sparse_form=sparse_form)
            solution = get_backend(backend_name).solve(form, time_limit=TIME_LIMIT)
            assert solution.status is SolveStatus.OPTIMAL
            objectives.add(round(solution.objective, 6))
    assert len(objectives) == 1


def test_tseng_lowering_parity(tseng_graph):
    """Sparse and dense lowerings of the tseng reference model agree."""
    model = ReferenceFormulation(tseng_graph).model
    scipy_backend = get_backend("scipy")
    sparse_obj = scipy_backend.solve(model.to_matrix_form()).objective
    dense_obj = scipy_backend.solve(model.to_matrix_form(sparse_form=False)).objective
    assert sparse_obj == pytest.approx(dense_obj)
    bnb_obj = get_backend("bnb").solve(model.to_matrix_form(),
                                       time_limit=TIME_LIMIT).objective
    assert bnb_obj == pytest.approx(sparse_obj)


def test_every_design_of_a_sweep_carries_solve_stats(fig1_graph):
    sweep = SweepEngine(time_limit=TIME_LIMIT).sweep(fig1_graph)
    assert sweep.reference.stats is not None
    for entry in sweep.entries:
        stats = entry.design.stats
        assert stats is not None
        assert stats.wall_seconds > 0.0
        assert stats.nnz > 0
        assert stats.backend


# ----------------------------------------------------------------------
# cache-key stability across processes (the contract repro serve relies on)
# ----------------------------------------------------------------------
def _key_in_worker(task):
    """Module-level so a process pool can pickle it."""
    return DesignCache().key_for(task)


def test_key_for_is_stable_across_processes(fig1_graph, tseng_graph):
    """The same task must hash to the same cache key in worker processes.

    A ProcessExecutor solve and a later in-process lookup (or a warm
    ``repro serve`` session) must agree on the key, or the cache would
    never hit across the process boundary.
    """
    from concurrent.futures import ProcessPoolExecutor

    tasks = [
        SweepEngine(backend="scipy").task(fig1_graph, "advbist", k=2),
        SweepEngine(backend="scipy").task(tseng_graph, "reference"),
        SweepEngine(backend="scipy").task(fig1_graph, "baseline", k=1,
                                          method="RALLOC"),
    ]
    local_keys = [DesignCache().key_for(task) for task in tasks]
    assert all(key is not None for key in local_keys)
    with ProcessPoolExecutor(max_workers=2) as pool:
        remote_keys = list(pool.map(_key_in_worker, tasks * 2))
    assert remote_keys == local_keys * 2


def test_key_for_is_deterministic_for_rebuilt_graphs(fig1_graph):
    """Two structurally identical graphs produce the same key."""
    from repro.circuits import fig1 as fig1_module

    engine = SweepEngine(backend="scipy")
    key_a = DesignCache().key_for(engine.task(fig1_graph, "advbist", k=1))
    key_b = DesignCache().key_for(engine.task(fig1_module.build(), "advbist", k=1))
    assert key_a == key_b


# ----------------------------------------------------------------------
# persistent process executor (the Session/serve worker pool)
# ----------------------------------------------------------------------
def test_persistent_process_executor_reuses_its_pool(fig1_graph):
    engine_tasks = SweepEngine(time_limit=TIME_LIMIT).sweep_grid([fig1_graph])
    with ProcessExecutor(2, persistent=True) as executor:
        engine = SweepEngine(time_limit=TIME_LIMIT, executor=executor, cache=None)
        engine.run(engine_tasks)
        pool = executor._pool
        assert pool is not None
        engine.run(engine_tasks)
        assert executor._pool is pool
    assert executor._pool is None  # context exit shuts the pool down


def test_persistent_executor_close_is_idempotent():
    executor = ProcessExecutor(2, persistent=True)
    executor.close()
    executor.close()
    assert executor._pool is None


def test_non_persistent_executor_keeps_no_pool(fig1_graph):
    executor = ProcessExecutor(2)
    engine = SweepEngine(time_limit=TIME_LIMIT, executor=executor, cache=None)
    engine.run(engine.sweep_grid([fig1_graph]))
    assert executor._pool is None


# ----------------------------------------------------------------------
# cache introspection
# ----------------------------------------------------------------------
def test_cache_info_counts_entries_and_bytes(tmp_path, fig1_graph):
    cache = DesignCache(tmp_path / "cache")
    empty = cache.info()
    assert (empty["root"], empty["entries"], empty["bytes"]) == \
        (str(tmp_path / "cache"), 0, 0)
    assert empty["memory"]["entries"] == 0
    engine = SweepEngine(time_limit=TIME_LIMIT, cache=cache)
    engine.sweep(fig1_graph, max_k=1)
    info = cache.info()
    assert info["entries"] == 2  # reference + k=1
    assert info["bytes"] > 0
    cache.clear()
    assert cache.info()["entries"] == 0
