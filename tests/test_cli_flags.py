"""Unit tests of the shared argparse value parsers (repro._flags).

``repro fuzz`` and ``repro bench`` (and every other numeric flag) share
one parser definition per flag shape — these tests pin the contract the
satellite extraction promised: one helper, consistent messages.
"""

from __future__ import annotations

import argparse

import pytest

from repro._flags import (
    int_at_least,
    nonnegative_float,
    positive_float,
    resource_limits,
    speedup_threshold,
)


class TestIntAtLeast:
    def test_parses_in_range(self):
        assert int_at_least(1, "--jobs")("3") == 3
        assert int_at_least(0, "--seed")("0") == 0

    def test_rejects_below_minimum(self):
        with pytest.raises(argparse.ArgumentTypeError,
                           match=r"--count must be >= 1, got 0"):
            int_at_least(1, "--count")("0")

    def test_rejects_non_integers(self):
        with pytest.raises(argparse.ArgumentTypeError,
                           match=r"--seed must be an integer, got 'x'"):
            int_at_least(0, "--seed")("x")

    def test_fuzz_and_bench_share_the_same_seed_semantics(self):
        """The one-definition guarantee: both commands parse --seed/--jobs
        through identical validators built from the same factory."""
        from repro.cli import build_parser

        parser = build_parser()
        fuzz = parser.parse_args(["fuzz", "--seed", "7"])
        bench = parser.parse_args(["bench", "run", "--suite", "table2",
                                   "--seed", "7", "--jobs", "2"])
        assert fuzz.seed == bench.seed == 7
        assert bench.jobs == 2
        for argv in (["fuzz", "--seed", "-1"],
                     ["bench", "run", "--suite", "table2", "--seed", "-1"]):
            with pytest.raises(SystemExit):
                parser.parse_args(argv)


class TestFloats:
    def test_positive_float(self):
        parse = positive_float("--time-limit", "a number of seconds")
        assert parse("2.5") == 2.5
        with pytest.raises(argparse.ArgumentTypeError, match="positive"):
            parse("0")
        with pytest.raises(argparse.ArgumentTypeError,
                           match="a number of seconds"):
            parse("soon")

    def test_nonnegative_float(self):
        parse = nonnegative_float("--min-seconds")
        assert parse("0") == 0.0
        assert parse("0.25") == 0.25
        with pytest.raises(argparse.ArgumentTypeError, match=">= 0"):
            parse("-0.1")


class TestSpeedupThreshold:
    @pytest.mark.parametrize("text, expected", [
        ("1.5x", 1.5), ("1.5X", 1.5), ("2", 2.0), ("1x", 1.0), (" 3.0x ", 3.0),
    ])
    def test_accepts_ratio_spellings(self, text, expected):
        assert speedup_threshold(text) == expected

    @pytest.mark.parametrize("text", ["0.5x", "0.99", "-2x", "fast", "x"])
    def test_rejects_nonsense(self, text):
        with pytest.raises(argparse.ArgumentTypeError):
            speedup_threshold(text)


class TestResourceLimits:
    def test_parses_class_counts(self):
        assert resource_limits("alu=1, mult=2") == {"alu": 1, "mult": 2}

    @pytest.mark.parametrize("text", ["alu", "=1", "alu=x", "alu=0", " , "])
    def test_rejects_malformed_entries(self, text):
        with pytest.raises(argparse.ArgumentTypeError):
            resource_limits(text)
