"""Tests for the symmetry-reduction helpers."""

import pytest

from repro.ilp import LinExpr, Model, lexicographic_slot_ordering, pin_assignments


def build_assignment_model(num_items: int, num_slots: int):
    """Items must occupy distinct slots; cost is slot-index weighted."""
    model = Model("assign")
    x = {
        (i, s): model.add_binary(f"x_{i}_{s}")
        for i in range(num_items) for s in range(num_slots)
    }
    for i in range(num_items):
        model.add_constr(LinExpr.sum(x[(i, s)] for s in range(num_slots)) == 1)
    for s in range(num_slots):
        model.add_constr(LinExpr.sum(x[(i, s)] for i in range(num_items)) <= 1)
    model.set_objective(
        LinExpr.sum((s + 1) * x[(i, s)] for i in range(num_items) for s in range(num_slots))
    )
    return model, x


def test_pin_assignments_fixes_variables():
    model, x = build_assignment_model(3, 3)
    added = pin_assignments(model, x, [(0, 0), (1, 1)])
    assert added == 2
    solution = model.solve()
    assert solution.is_one(x[(0, 0)])
    assert solution.is_one(x[(1, 1)])


def test_pin_assignments_ignores_missing_pairs():
    model, x = build_assignment_model(2, 2)
    added = pin_assignments(model, x, [(0, 0), (7, 7)])
    assert added == 1


def test_pinning_preserves_optimal_objective():
    unpinned_model, _ = build_assignment_model(3, 3)
    unpinned = unpinned_model.solve().objective

    pinned_model, x = build_assignment_model(3, 3)
    pin_assignments(pinned_model, x, [(0, 0), (1, 1), (2, 2)])
    pinned = pinned_model.solve().objective
    # The assignment polytope is symmetric, so pinning any permutation keeps
    # the same optimum (this is the section 3.5 argument).
    assert pinned == pytest.approx(unpinned)


def test_lexicographic_ordering_preserves_feasibility_and_cost():
    base_model, _ = build_assignment_model(3, 3)
    base = base_model.solve().objective

    model, x = build_assignment_model(3, 3)
    added = lexicographic_slot_ordering(model, x, items=[0, 1, 2], slots=[0, 1, 2])
    assert added > 0
    solution = model.solve()
    assert solution.status.has_solution
    assert solution.objective == pytest.approx(base)


def test_lexicographic_ordering_blocks_unreachable_slots():
    model, x = build_assignment_model(1, 3)
    lexicographic_slot_ordering(model, x, items=[0], slots=[0, 1, 2])
    solution = model.solve()
    # With a single item, only slot 0 is usable under the ordering rule.
    assert solution.is_one(x[(0, 0)])
