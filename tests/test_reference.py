"""Tests of the reference (non-BIST) data-path ILP."""

import pytest

from repro.core import ReferenceFormulation, FormulationError, FormulationOptions
from repro.cost import datapath_area
from repro.datapath import Datapath
from repro.hls import left_edge_binding


def test_requires_scheduled_bound_graph(fig1_behavioral):
    with pytest.raises(FormulationError):
        ReferenceFormulation(fig1_behavioral)


def test_reference_is_optimal_and_valid(fig1_graph):
    result = ReferenceFormulation(fig1_graph).solve()
    assert result.solution.proven_optimal
    design = result.design
    assert design is not None
    design.datapath.validate()
    assert design.area().register_count == 3


def test_reference_objective_matches_area(fig1_graph):
    result = ReferenceFormulation(fig1_graph).solve()
    assert result.solution.objective == pytest.approx(result.design.area().total)


def test_reference_beats_or_matches_left_edge(fig1_graph, tseng_graph):
    """The ILP optimum is a lower bound on any heuristic register binding."""
    for graph in (fig1_graph, tseng_graph):
        result = ReferenceFormulation(graph).solve()
        heuristic = Datapath.from_bindings(graph, left_edge_binding(graph).assignment)
        assert result.design.area().total <= datapath_area(heuristic).total + 1e-9


def test_reference_table_row(fig1_graph):
    design = ReferenceFormulation(fig1_graph).solve().design
    row = design.table3_row()
    assert row["Method"] == "Ref."
    assert row["T"] == row["S"] == row["B"] == row["C"] == 0
    assert row["R"] == 3


def test_reference_with_extra_register_not_cheaper(fig1_graph):
    base = ReferenceFormulation(fig1_graph).solve().solution.objective
    enlarged = ReferenceFormulation(
        fig1_graph, options=FormulationOptions(num_registers=4)
    ).solve().solution.objective
    # An extra register may only pay off if it saves >= its own cost in muxes;
    # on this tiny example it cannot, so the optimum must not improve.
    assert enlarged >= base - 1e-6


def test_reference_without_commutative_swap(fig1_graph):
    with_swap = ReferenceFormulation(fig1_graph).solve().solution.objective
    without = ReferenceFormulation(
        fig1_graph, options=FormulationOptions(allow_commutative_swap=False)
    ).solve().solution.objective
    assert without >= with_swap - 1e-6
