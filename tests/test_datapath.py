"""Tests of the RTL data-path structure derived from bindings."""

import pytest

from repro.datapath import Datapath, DatapathError, Multiplexer
from repro.datapath.components import ModuleToRegisterWire, RegisterToPortWire
from repro.hls import left_edge_binding


@pytest.fixture()
def fig1_datapath(fig1_graph):
    binding = left_edge_binding(fig1_graph)
    return Datapath.from_bindings(fig1_graph, binding.assignment)


def test_construction_requires_bound_graph(fig1_behavioral):
    with pytest.raises(DatapathError):
        Datapath.from_bindings(fig1_behavioral, {})


def test_construction_requires_complete_assignment(fig1_graph):
    with pytest.raises(DatapathError):
        Datapath.from_bindings(fig1_graph, {0: 0})


def test_fig1_structure(fig1_datapath, fig1_graph):
    assert len(fig1_datapath.registers) == 3
    assert len(fig1_datapath.modules) == 2
    # every DFG variable landed in exactly one register
    assert sorted(fig1_datapath.register_of_variable) == fig1_graph.variable_ids
    fig1_datapath.validate()


def test_every_transfer_has_a_wire(fig1_datapath, fig1_graph):
    for op in fig1_graph.operations.values():
        out_reg = fig1_datapath.register_of_variable[op.output]
        assert fig1_datapath.has_module_to_register_wire(op.module, out_reg)
        for port, var in op.variable_inputs:
            reg = fig1_datapath.register_of_variable[var]
            assert fig1_datapath.has_register_to_port_wire(reg, op.module, port)


def test_no_adverse_wires(fig1_datapath, fig1_graph):
    """Every wire is justified by at least one DFG edge."""
    for wire in fig1_datapath.register_wires:
        justified = False
        for op in fig1_graph.operations.values():
            if op.module != wire.module:
                continue
            for port, var in op.variable_inputs:
                if port == wire.port and fig1_datapath.register_of_variable[var] == wire.register:
                    justified = True
        assert justified


def test_mux_counting(fig1_datapath):
    muxes = fig1_datapath.multiplexers()
    # one mux per register plus one per module input port
    assert len(muxes) == 3 + 2 * 2
    total_inputs = sum(m.inputs for m in muxes if m.is_real)
    assert total_inputs == fig1_datapath.mux_input_total()
    histogram = fig1_datapath.mux_size_histogram()
    assert sum(size * count for size, count in histogram.items()) == total_inputs


def test_trivial_mux_is_not_real():
    assert not Multiplexer("register", (0,), 1).is_real
    assert not Multiplexer("register", (0,), 0).is_real
    assert Multiplexer("register", (0,), 2).is_real


def test_queries(fig1_datapath):
    module = fig1_datapath.modules[0]
    regs = fig1_datapath.registers_driving_port(module.module_id, 0)
    assert all(r in fig1_datapath.register_ids for r in regs)
    assert fig1_datapath.module(module.module_id) is module
    with pytest.raises(KeyError):
        fig1_datapath.module(999)
    with pytest.raises(KeyError):
        fig1_datapath.register(999)


def test_port_permutations_change_wiring(fig1_graph):
    binding = left_edge_binding(fig1_graph)
    commutative_ops = [op.op_id for op in fig1_graph.operations.values() if op.commutative]
    target = commutative_ops[0]
    swapped = Datapath.from_bindings(
        fig1_graph, binding.assignment, port_permutations={target: {0: 1, 1: 0}}
    )
    identity = Datapath.from_bindings(fig1_graph, binding.assignment)
    swapped.validate()
    assert set(swapped.register_wires) != set(identity.register_wires)


def test_invalid_permutation_rejected(fig1_graph):
    binding = left_edge_binding(fig1_graph)
    with pytest.raises(DatapathError):
        Datapath.from_bindings(fig1_graph, binding.assignment,
                               port_permutations={0: {0: 5}})


def test_validate_detects_missing_wire(fig1_datapath):
    fig1_datapath.register_wires.pop()
    with pytest.raises(DatapathError):
        fig1_datapath.validate()


def test_validate_detects_adverse_wire(fig1_graph):
    binding = left_edge_binding(fig1_graph)
    datapath = Datapath.from_bindings(fig1_graph, binding.assignment)
    used_ports = {(w.module, w.port, w.register) for w in datapath.register_wires}
    # find an unused (register, module, port) combination and inject it
    for reg in datapath.register_ids:
        for module in datapath.modules:
            for port in module.input_ports:
                if (module.module_id, port, reg) not in used_ports:
                    datapath.register_wires.append(
                        RegisterToPortWire(reg, module.module_id, port)
                    )
                    with pytest.raises(DatapathError):
                        datapath.validate()
                    return
    pytest.skip("data path is fully connected; no adverse wire can be injected")


def test_validate_detects_unknown_component(fig1_datapath):
    fig1_datapath.module_wires.append(ModuleToRegisterWire(module=77, register=0))
    with pytest.raises(DatapathError):
        fig1_datapath.validate()


def test_summary(fig1_datapath):
    summary = fig1_datapath.summary()
    assert summary["registers"] == 3
    assert summary["modules"] == 2
    assert summary["mux_inputs"] == fig1_datapath.mux_input_total()
