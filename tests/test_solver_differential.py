"""The differential-testing wall of the solver acceleration stack.

Every acceleration layer — presolve, root cutting planes, branch-and-bound
bound propagation, the strategy backends, the adaptive portfolio — claims
exactness.  This suite locks that in by fuzzing random scheduled DFGs
through the full (presolve × cuts × pruning × backend) grid and asserting
objective parity against the *untouched* scipy/HiGHS reference (plain
``Model.solve(backend="scipy")`` with every acceleration knob off).

Failures are written as replayable JSON artefacts in the same shape as
``repro fuzz`` failure files: the embedded ``graph`` dictionary replays
through ``repro.dfg.textio`` / ``repro synth``, and ``combo`` names the
exact configuration that disagreed.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import get_circuit
from repro.core.formulation import AdvBistFormulation
from repro.dfg import textio
from repro.dfg.generate import generate_scheduled
from repro.ilp import SolveStatus
from repro.ilp.backends import BranchAndBoundBackend

TIME_LIMIT = 60.0

#: Node budget for the branch-and-bound arms of the grid.  A pure-Python
#: search cannot close the big root gaps of the harder models inside a
#: test suite; a capped run returns an honest FEASIBLE/TIME_LIMIT outcome
#: which the parity check treats as inconclusive (exactly like ``repro
#: fuzz`` does) — but any *proof* it emits must still match the reference.
_BNB_NODE_LIMIT = 20_000

#: Where disagreement artefacts land; printed in the assertion message.
FAILURE_DIR = Path(tempfile.mkdtemp(prefix="repro-differential-"))

#: The exact-solver grid.  ``bnb-noprune`` is branch and bound with the
#: vectorised bound propagation disabled — the "pruning" axis of the grid.
BACKENDS = ("scipy", "bnb", "bnb-noprune")

#: The strategy/portfolio arms, exercised at the two knob corners only
#: (their inner machinery already covers the cut/presolve paths).
STRATEGY_BACKENDS = ("scipy-cuts", "scipy-ws", "adaptive")


def _combos():
    for backend in BACKENDS:
        for presolve in (False, True):
            for cuts in (False, True):
                yield {"backend": backend, "presolve": presolve, "cuts": cuts}
    for backend in STRATEGY_BACKENDS:
        yield {"backend": backend, "presolve": False, "cuts": False}
        yield {"backend": backend, "presolve": True, "cuts": True}


COMBOS = tuple(_combos())


def _solve(model, combo, incumbent_hint=None):
    backend = combo["backend"]
    if backend == "bnb":
        backend = BranchAndBoundBackend(node_limit=_BNB_NODE_LIMIT)
    elif backend == "bnb-noprune":
        backend = BranchAndBoundBackend(node_limit=_BNB_NODE_LIMIT,
                                        propagate=False)
    return model.solve(backend=backend, time_limit=TIME_LIMIT,
                       presolve=combo["presolve"], cuts=combo["cuts"],
                       incumbent_hint=incumbent_hint)


def _record_failure(graph, k, combo, reference, got) -> Path:
    label = "-".join(f"{key}={value}" for key, value in sorted(combo.items()))
    payload = {
        "kind": "repro-differential-failure",
        "circuit": graph.name,
        "k": k,
        "combo": combo,
        "reference": {"status": reference.status.value,
                      "objective": reference.objective},
        "got": {"status": got.status.value, "objective": got.objective},
        "graph": textio.to_dict(graph),
    }
    path = FAILURE_DIR / f"{graph.name}_k{k}_{label}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True),
                    encoding="utf-8")
    return path


def _objectives_match(a, b) -> bool:
    # Objectives carry float noise from c @ x accumulation order, so
    # parity is approximate, not bit-exact.
    if a is None or b is None:
        return a is None and b is None
    return abs(a - b) <= 1e-6 * max(1.0, abs(b))


def _parity_holds(reference, got) -> bool:
    """The ``repro fuzz`` parity semantic: proofs must agree, limits may not.

    A run stopped by a node/time limit proved nothing, so it is
    inconclusive — *unless* it contradicts the reference proof: an
    incumbent strictly better than a proven optimum, or any incumbent
    against proven infeasibility, is a real bug either way.
    """
    if got.status is SolveStatus.OPTIMAL:
        return (reference.status is SolveStatus.OPTIMAL
                and _objectives_match(got.objective, reference.objective))
    if got.status is SolveStatus.INFEASIBLE:
        return reference.status is SolveStatus.INFEASIBLE
    # Inconclusive (FEASIBLE / TIME_LIMIT / ...): no contradiction allowed.
    if reference.status is SolveStatus.INFEASIBLE:
        return got.objective is None
    if got.objective is None:
        return True
    return got.objective >= reference.objective - 1e-6 * max(
        1.0, abs(reference.objective))


def _assert_differential_parity(graph, k):
    """Every combo must agree with the untouched scipy reference."""
    model = AdvBistFormulation(graph, k).model
    reference = model.solve(backend="scipy", time_limit=TIME_LIMIT)
    for combo in COMBOS:
        got = _solve(AdvBistFormulation(graph, k).model, combo)
        if _parity_holds(reference, got):
            continue
        path = _record_failure(graph, k, combo, reference, got)
        raise AssertionError(
            f"{combo} disagrees with the scipy reference on "
            f"{graph.name} (k={k}): reference "
            f"{reference.status.value}/{reference.objective}, got "
            f"{got.status.value}/{got.objective}; replayable artefact: {path}")


# ----------------------------------------------------------------------
# the wall
# ----------------------------------------------------------------------
def test_differential_wall_on_fig1():
    _assert_differential_parity(get_circuit("fig1"), 2)


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       ops=st.integers(min_value=3, max_value=6))
def test_differential_wall_on_random_circuits(seed, ops):
    graph = generate_scheduled(seed=seed, num_operations=ops)
    k = max(1, len(graph.module_ids) - 1)
    _assert_differential_parity(graph, k)


@settings(max_examples=3, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_differential_wall_with_incumbent_hints(seed):
    """Warm-start hints (achievable and unachievable) never change results."""
    graph = generate_scheduled(seed=seed, num_operations=5)
    k = max(1, len(graph.module_ids) - 1)
    reference = AdvBistFormulation(graph, k).model.solve(
        backend="scipy", time_limit=TIME_LIMIT)
    if reference.status is not SolveStatus.OPTIMAL:
        return  # hint semantics only defined against a solvable model
    for backend in ("bnb", "scipy-ws", "adaptive"):
        for hint in (reference.objective,        # exactly achievable
                     reference.objective + 50.0,  # loose
                     reference.objective - 50.0):  # unachievable
            got = AdvBistFormulation(graph, k).model.solve(
                backend=backend, time_limit=TIME_LIMIT, incumbent_hint=hint)
            assert got.status is SolveStatus.OPTIMAL, (backend, hint)
            assert got.objective == pytest.approx(reference.objective), \
                (backend, hint)


# ----------------------------------------------------------------------
# the artefact machinery itself
# ----------------------------------------------------------------------
def test_failure_artefacts_are_replayable():
    graph = get_circuit("fig1")
    model = AdvBistFormulation(graph, 1).model
    reference = model.solve(backend="scipy", time_limit=TIME_LIMIT)
    path = _record_failure(graph, 1, {"backend": "scipy", "presolve": False,
                                      "cuts": False},
                           reference, reference)
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["kind"] == "repro-differential-failure"
    replayed = textio.from_dict(payload["graph"])
    assert textio.to_dict(replayed) == payload["graph"]
    # The replayed graph reproduces the recorded objective, so the artefact
    # alone is enough to chase the disagreement.
    again = AdvBistFormulation(replayed, payload["k"]).model.solve(
        backend="scipy", time_limit=TIME_LIMIT)
    assert again.objective == pytest.approx(payload["reference"]["objective"])
