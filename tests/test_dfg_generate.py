"""Tests of the seeded random DFG generator (``repro.dfg.generate``)."""

from __future__ import annotations

import pytest

from repro.dfg import textio
from repro.dfg.generate import (
    GeneratorConfig,
    generate_behavioral,
    generate_corpus,
    generate_scheduled,
    resource_limits_for,
)


def test_generator_is_deterministic():
    first = generate_scheduled(seed=3, num_operations=8)
    second = generate_scheduled(seed=3, num_operations=8)
    assert textio.to_dict(first) == textio.to_dict(second)


def test_different_seeds_differ():
    graphs = [textio.to_json(generate_scheduled(seed=s, num_operations=8))
              for s in range(4)]
    assert len(set(graphs)) > 1


@pytest.mark.parametrize("seed", range(8))
def test_generated_graphs_are_valid_and_ready(seed):
    graph = generate_scheduled(seed=seed, num_operations=7)
    graph.validate()  # raises on any structural violation
    assert graph.is_scheduled
    assert graph.is_module_bound
    assert len(graph) == 7
    assert graph.primary_outputs()


@pytest.mark.parametrize("seed", range(8))
def test_every_primary_input_is_consumed(seed):
    graph = generate_behavioral(seed=seed, num_operations=6)
    consumed = {v for (v, _o, _l) in graph.input_edges}
    for var_id in graph.primary_inputs():
        assert var_id in consumed, f"primary input {var_id} dangles"


def test_behavioral_output_is_unscheduled():
    graph = generate_behavioral(seed=0, num_operations=5)
    assert not graph.is_scheduled
    assert not graph.is_module_bound


def test_sharing_pressure_controls_module_count():
    tight = generate_scheduled(seed=1, num_operations=10, sharing_pressure=1.0)
    loose = generate_scheduled(seed=1, num_operations=10, sharing_pressure=0.0)
    # Full pressure gives one module per class present in the graph.
    assert len(tight.module_ids) == len(tight.operation_kinds())
    assert len(loose.module_ids) >= len(tight.module_ids)
    # ... and tighter budgets force deeper schedules.
    assert len(tight.control_steps) >= len(loose.control_steps)


def test_resource_limits_for_bounds():
    graph = generate_behavioral(seed=2, num_operations=9)
    full = resource_limits_for(graph, 1.0)
    none = resource_limits_for(graph, 0.0)
    for cls, ops in graph.operation_kinds().items():
        assert full[cls] == 1
        assert none[cls] == len(ops)


def test_constant_probability_zero_means_no_constants():
    graph = generate_behavioral(seed=4, num_operations=10, constant_probability=0.0)
    assert graph.constants == []


def test_output_density_one_marks_every_operation_output():
    graph = generate_behavioral(seed=5, num_operations=6, output_density=1.0)
    produced = {op.output for op in graph.operations.values()}
    assert produced <= set(graph.primary_outputs())


def test_corpus_uses_consecutive_seeds():
    corpus = list(generate_corpus(3, seed=10, num_operations=5))
    assert [g.name for g in corpus] == ["rand_s10_o5", "rand_s11_o5", "rand_s12_o5"]
    # each corpus member is regenerated exactly by its reported seed
    replay = generate_scheduled(seed=11, num_operations=5)
    assert textio.to_dict(replay) == textio.to_dict(corpus[1])


def test_config_validation():
    with pytest.raises(ValueError):
        GeneratorConfig(num_operations=0)
    with pytest.raises(ValueError):
        GeneratorConfig(kinds=())
    with pytest.raises(ValueError):
        GeneratorConfig(sharing_pressure=1.5)
    with pytest.raises(ValueError):
        GeneratorConfig(output_density=-0.1)
    with pytest.raises(ValueError):
        GeneratorConfig(constant_probability=1.0)
    with pytest.raises(ValueError):
        list(generate_corpus(0))


def test_num_inputs_clamped_to_consumable():
    # More inputs than guaranteed variable slots could never all be consumed.
    graph = generate_behavioral(seed=6, num_operations=3, num_inputs=50)
    assert len(graph.primary_inputs()) <= 3
