"""Tests of the ``repro serve`` JSON-lines daemon (the wire protocol)."""

import io
import json

import pytest

from repro.api import Session, serve


def run_daemon(requests, tmp_path, progress=True, concurrency=1,
               **session_kwargs):
    """Feed request lines through one warm session; return parsed responses."""
    session_kwargs.setdefault("time_limit", 60.0)
    session_kwargs.setdefault("cache_dir", str(tmp_path / "serve-cache"))
    stdin = io.StringIO("".join(line + "\n" for line in requests))
    stdout = io.StringIO()
    with Session(**session_kwargs) as session:
        handled = serve(session, stdin=stdin, stdout=stdout,
                        progress=progress, concurrency=concurrency)
    lines = stdout.getvalue().splitlines()
    return handled, [json.loads(line) for line in lines]


def results_of(responses):
    return [r for r in responses if r["type"] == "result"]


def test_batch_of_two_distinct_specs_from_one_warm_session(tmp_path):
    handled, responses = run_daemon([
        '{"job": "synthesize", "circuit": "fig1", "k": 2}',
        '{"job": "compare", "circuit": "fig1", "k": 2}',
    ], tmp_path)
    assert handled == 2
    results = results_of(responses)
    assert len(results) == 2
    kinds = [r["envelope"]["kind"] for r in results]
    assert kinds == ["synthesize", "compare"]
    assert all(r["envelope"]["status"] == "ok" for r in results)


def test_second_identical_spec_reports_cached_true(tmp_path):
    _, responses = run_daemon([
        '{"job": "sweep", "circuit": "fig1", "max_k": 1}',
        '{"job": "sweep", "circuit": "fig1", "max_k": 1}',
    ], tmp_path)
    first, second = results_of(responses)
    assert first["envelope"]["cached"] is False
    assert second["envelope"]["cached"] is True


def test_progress_events_stream_before_the_result(tmp_path):
    _, responses = run_daemon(
        ['{"job": "sweep", "circuit": "fig1", "max_k": 1}'], tmp_path)
    types = [r["type"] for r in responses]
    assert types == ["progress", "progress", "result"]
    assert responses[0]["event"] == "job_started"
    assert responses[1]["event"] == "job_finished"


def test_quiet_mode_emits_only_results(tmp_path):
    _, responses = run_daemon(
        ['{"job": "sweep", "circuit": "fig1", "max_k": 1}'],
        tmp_path, progress=False)
    assert [r["type"] for r in responses] == ["result"]


def test_client_request_ids_are_echoed(tmp_path):
    _, responses = run_daemon([
        '{"job": "sweep", "circuit": "fig1", "max_k": 1, "id": "req-7"}',
    ], tmp_path)
    assert {r["id"] for r in responses} == {"req-7"}


def test_malformed_json_yields_error_line_and_daemon_keeps_serving(tmp_path):
    handled, responses = run_daemon([
        "this is not json",
        '{"job": "sweep", "circuit": "fig1", "max_k": 1}',
    ], tmp_path)
    assert responses[0]["type"] == "error"
    assert responses[0]["error"]["type"] == "ProtocolError"
    assert results_of(responses)[0]["envelope"]["status"] == "ok"


def test_unknown_job_kind_yields_error_line(tmp_path):
    _, responses = run_daemon(['{"job": "teleport"}'], tmp_path)
    assert responses[0]["type"] == "error"
    assert "teleport" in responses[0]["error"]["message"]


def test_solver_failures_come_back_as_error_envelopes_not_crashes(tmp_path):
    handled, responses = run_daemon([
        '{"job": "sweep", "circuit": "no_such_circuit"}',
        '{"op": "ping"}',
    ], tmp_path)
    result = results_of(responses)[0]
    assert result["envelope"]["status"] == "error"
    assert result["envelope"]["error"]["type"] == "JobSpecError"
    # the daemon survived and answered the next request
    assert responses[-1] == {"type": "control", "id": 2, "op": "ping", "ok": True}


def test_control_ops(tmp_path):
    handled, responses = run_daemon([
        '{"op": "ping"}',
        '{"job": "sweep", "circuit": "fig1", "max_k": 1}',
        '{"op": "cache_info"}',
        '{"op": "cache_clear"}',
        '{"op": "cache_info"}',
    ], tmp_path, progress=False)
    assert handled == 5
    infos = [r for r in responses if r.get("op") == "cache_info"]
    assert infos[0]["cache"]["entries"] > 0
    assert infos[1]["cache"]["entries"] == 0
    clear = next(r for r in responses if r.get("op") == "cache_clear")
    assert clear["removed"] > 0


def test_stats_op_counts_jobs_and_reports_cache_hit_rate(tmp_path):
    _, responses = run_daemon([
        '{"job": "sweep", "circuit": "fig1", "max_k": 1}',
        '{"job": "sweep", "circuit": "fig1", "max_k": 1}',
        '{"op": "stats"}',
    ], tmp_path, progress=False)
    stats = next(r for r in responses if r.get("op") == "stats")["stats"]
    assert stats["jobs"]["sweep"] == {"ok": 2, "error": 0, "cached": 1}
    assert stats["total_jobs"] == 2
    assert stats["cache"]["enabled"] is True
    assert sorted(stats["scheduler"]) == [
        "cache_hits", "coalesced", "deduped", "executed", "submitted"]


def test_unknown_op_is_a_protocol_error(tmp_path):
    _, responses = run_daemon(['{"op": "dance"}'], tmp_path)
    assert responses[0]["type"] == "error"
    assert "dance" in responses[0]["error"]["message"]


def test_shutdown_stops_the_daemon_early(tmp_path):
    handled, responses = run_daemon([
        '{"op": "ping"}',
        '{"op": "shutdown"}',
        '{"job": "sweep", "circuit": "fig1", "max_k": 1}',  # never reached
    ], tmp_path)
    assert handled == 2
    assert responses[-1]["op"] == "shutdown"
    assert not results_of(responses)


def test_blank_lines_are_ignored(tmp_path):
    handled, responses = run_daemon(["", "   ", '{"op": "ping"}'], tmp_path)
    assert handled == 1
    assert responses[0]["op"] == "ping"


def test_client_disconnect_ends_the_daemon_cleanly(tmp_path):
    """A client closing the pipe mid-batch must not crash the daemon."""

    class OneLinePipe(io.StringIO):
        def write(self, text):
            if self.getvalue():
                raise BrokenPipeError("client went away")
            return super().write(text)

    stdin = io.StringIO('{"job": "sweep", "circuit": "fig1", "max_k": 1}\n'
                        '{"job": "sweep", "circuit": "fig1", "max_k": 1}\n')
    stdout = OneLinePipe()
    with Session(time_limit=60.0, cache_dir=str(tmp_path / "c")) as session:
        serve(session, stdin=stdin, stdout=stdout, progress=False)  # no raise
    # only the first response line made it out before the pipe broke
    assert len(stdout.getvalue().splitlines()) == 1


def test_concurrent_mode_answers_every_request_exactly_once(tmp_path):
    requests = [
        f'{{"job": "sweep", "circuit": "fig1", "max_k": 1, "id": {i}}}'
        for i in range(6)
    ]
    handled, responses = run_daemon(requests, tmp_path, progress=False,
                                    concurrency=3)
    assert handled == 6
    results = results_of(responses)
    assert sorted(r["id"] for r in results) == list(range(6))
    assert all(r["envelope"]["status"] == "ok" for r in results)


def test_concurrent_mode_stops_promptly_after_client_disconnect(tmp_path):
    """With workers in flight, a broken pipe must cancel the queued
    backlog instead of solving jobs nobody will read."""

    class OneLinePipe(io.StringIO):
        def write(self, text):
            if self.getvalue():
                raise BrokenPipeError("client went away")
            return super().write(text)

    spec = '{"job": "sweep", "circuit": "fig1", "max_k": 1}\n'
    stdin = io.StringIO(spec * 8)
    stdout = OneLinePipe()
    with Session(time_limit=60.0, cache_dir=str(tmp_path / "c")) as session:
        serve(session, stdin=stdin, stdout=stdout, progress=False,
              concurrency=2)  # no raise
    # only the first response made it out; the rest were dropped/cancelled
    assert len(stdout.getvalue().splitlines()) == 1


def test_every_response_line_is_valid_json(tmp_path):
    stdin = io.StringIO('{"job": "synthesize", "circuit": "fig1", "k": 2}\n'
                        "garbage\n")
    stdout = io.StringIO()
    with Session(time_limit=60.0, cache_dir=str(tmp_path / "c")) as session:
        serve(session, stdin=stdin, stdout=stdout)
    for line in stdout.getvalue().splitlines():
        json.loads(line)  # raises on any malformed output line
