"""Tests of the benchmark circuit suite."""

import pytest

from repro.circuits import get_circuit, get_spec, list_circuits
from repro.dfg import minimum_module_counts, minimum_register_count


PAPER_CIRCUITS = ["tseng", "paulin", "fir6", "iir3", "dct4", "wavelet6"]


def test_registry_lists_all_circuits():
    names = list_circuits()
    assert set(PAPER_CIRCUITS) <= set(names)
    assert "fig1" in names
    assert set(list_circuits(paper_only=True)) == set(PAPER_CIRCUITS)


def test_unknown_circuit_rejected():
    with pytest.raises(KeyError):
        get_circuit("does_not_exist")


@pytest.mark.parametrize("name", PAPER_CIRCUITS + ["fig1"])
def test_circuits_build_scheduled_and_bound(name):
    graph = get_circuit(name)
    assert graph.is_scheduled
    assert graph.is_module_bound
    graph.validate()
    assert graph.name == name


@pytest.mark.parametrize("name", PAPER_CIRCUITS + ["fig1"])
def test_module_count_matches_paper_session_count(name):
    """Table 3 lists the maximal number of test sessions per circuit; in the
    parallel BIST architecture this equals the module count."""
    spec = get_spec(name)
    graph = spec.build()
    assert len(graph.module_ids) == spec.paper_max_sessions


@pytest.mark.parametrize("name", PAPER_CIRCUITS)
def test_resource_limits_respected(name):
    spec = get_spec(name)
    graph = spec.build()
    counts = minimum_module_counts(graph)
    for cls, used in counts.items():
        limit = spec.resource_limits.get(cls)
        if limit is not None:
            assert used <= limit


@pytest.mark.parametrize("name", PAPER_CIRCUITS)
def test_register_pressure_in_paper_range(name):
    """The reconstructed circuits should need a register count in the same
    small range the paper reports (5 to 8 registers)."""
    graph = get_circuit(name)
    registers = minimum_register_count(graph)
    assert 4 <= registers <= 10


@pytest.mark.parametrize("name", PAPER_CIRCUITS + ["fig1"])
def test_behavioral_and_scheduled_have_same_operations(name):
    spec = get_spec(name)
    behavioral = spec.build_behavioral()
    scheduled = spec.build()
    assert behavioral.operation_ids == scheduled.operation_ids
    assert behavioral.input_edges == scheduled.input_edges


def test_fig1_matches_paper_shape():
    graph = get_circuit("fig1")
    assert len(graph.operation_ids) == 4
    assert len(graph.variable_ids) == 8
    assert minimum_register_count(graph) == 3
    assert len(graph.module_ids) == 2


def test_circuit_descriptions_present():
    for name in list_circuits():
        spec = get_spec(name)
        assert spec.description
        assert spec.resource_limits
