"""Tests of the top-level public API surface and the result objects."""

import pytest

import repro
from repro.core import AdvBistSynthesizer, synthesize_bist, synthesize_reference


def test_version_and_all_exports():
    assert repro.__version__
    for name in repro.__all__:
        if name == "__version__":
            continue
        assert hasattr(repro, name), f"missing public export {name!r}"


def test_public_api_names_cover_the_deliverables():
    expected = {
        "DFGBuilder", "DataFlowGraph", "list_schedule", "bind_modules",
        "AdvBistSynthesizer", "synthesize_bist", "synthesize_reference",
        "run_advan", "run_ralloc", "run_bits",
        "get_circuit", "list_circuits", "compare_methods",
        "CostModel", "PAPER_COST_MODEL", "TestRegisterKind",
    }
    assert expected <= set(repro.__all__)


@pytest.fixture(scope="module")
def fig1_pair(fig1_graph):
    reference = synthesize_reference(fig1_graph)
    design = synthesize_bist(fig1_graph, k=2)
    return reference, design


def test_bist_design_summary_fields(fig1_pair):
    _reference, design = fig1_pair
    summary = design.summary()
    assert summary["method"] == "ADVBIST"
    assert summary["circuit"] == "fig1"
    assert summary["k"] == 2
    assert summary["area"] == design.area().total
    assert summary["optimal"] is True
    assert summary["solve_seconds"] >= 0.0


def test_bist_design_table_row_with_and_without_reference(fig1_pair):
    reference, design = fig1_pair
    bare = design.table3_row()
    assert "OH(%)" not in bare
    with_reference = design.table3_row(reference.area().total)
    assert with_reference["OH(%)"] == pytest.approx(
        design.overhead_vs(reference.area().total), abs=0.1
    )


def test_reference_design_fields(fig1_pair):
    reference, _design = fig1_pair
    assert reference.circuit == "fig1"
    assert reference.optimal is True
    assert reference.area().total == pytest.approx(reference.objective)


def test_sweep_entry_row_consistency(fig1_graph):
    sweep = AdvBistSynthesizer(fig1_graph, time_limit=60).sweep(max_k=1)
    entry = sweep.entries[0]
    row = entry.table2_row()
    assert row["circuit"] == "fig1"
    assert row["k"] == 1
    assert row["area"] == entry.design.area().total
    assert row["overhead_percent"] == pytest.approx(entry.overhead_percent, abs=0.1)
    assert sweep.overheads() == {1: entry.overhead_percent}


def test_area_breakdown_counts_row_consistency(fig1_pair):
    _reference, design = fig1_pair
    breakdown = design.area()
    row = breakdown.counts_row()
    kinds = design.kind_counts()
    assert row["T"] == kinds[repro.TestRegisterKind.TPG]
    assert row["S"] == kinds[repro.TestRegisterKind.SR]
    assert row["B"] == kinds[repro.TestRegisterKind.BILBO]
    assert row["C"] == kinds[repro.TestRegisterKind.CBILBO]
    assert row["R"] == sum(kinds.values())
    assert row["Area"] == breakdown.register_area + breakdown.mux_area
