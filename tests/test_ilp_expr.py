"""Unit tests for the linear-expression algebra."""

import pytest

from repro.ilp import LinExpr, Model, Sense, VarType, quicksum
from repro.ilp.expr import Constraint


@pytest.fixture()
def model():
    return Model("expr_tests")


def test_variable_defaults_are_binary(model):
    x = model.add_binary("x")
    assert x.vartype is VarType.BINARY
    assert (x.lower, x.upper) == (0.0, 1.0)


def test_variable_addition_builds_expression(model):
    x = model.add_binary("x")
    y = model.add_binary("y")
    expr = x + y
    assert isinstance(expr, LinExpr)
    assert expr.terms == {x: 1.0, y: 1.0}
    assert expr.constant == 0.0


def test_scalar_multiplication_and_negation(model):
    x = model.add_binary("x")
    expr = 3 * x - 2.0
    assert expr.terms == {x: 3.0}
    assert expr.constant == -2.0
    negated = -expr
    assert negated.terms == {x: -3.0}
    assert negated.constant == 2.0


def test_subtraction_between_variables(model):
    x = model.add_binary("x")
    y = model.add_binary("y")
    expr = x - y
    assert expr.terms == {x: 1.0, y: -1.0}


def test_rsub_with_constant(model):
    x = model.add_binary("x")
    expr = 5 - x
    assert expr.terms == {x: -1.0}
    assert expr.constant == 5.0


def test_zero_coefficients_are_dropped(model):
    x = model.add_binary("x")
    y = model.add_binary("y")
    expr = x + y - y
    assert expr.terms == {x: 1.0}


def test_quicksum_mixes_vars_exprs_and_numbers(model):
    x = model.add_binary("x")
    y = model.add_binary("y")
    expr = quicksum([x, 2 * y, 3, 1.5])
    assert expr.terms == {x: 1.0, y: 2.0}
    assert expr.constant == 4.5


def test_expression_evaluation(model):
    x = model.add_binary("x")
    y = model.add_binary("y")
    expr = 2 * x + 3 * y + 1
    assert expr.value({x: 1.0, y: 0.0}) == pytest.approx(3.0)
    assert expr.value({x: 1.0, y: 1.0}) == pytest.approx(6.0)


def test_le_constraint_structure(model):
    x = model.add_binary("x")
    y = model.add_binary("y")
    constraint = x + y <= 1
    assert isinstance(constraint, Constraint)
    assert constraint.sense is Sense.LE
    # folded form: x + y - 1 <= 0
    assert constraint.expr.constant == -1.0


def test_ge_and_eq_constraints(model):
    x = model.add_binary("x")
    ge = x >= 0.5
    eq = (x + 0.0) == 1.0
    assert ge.sense is Sense.GE
    assert eq.sense is Sense.EQ


def test_constraint_satisfaction_check(model):
    x = model.add_binary("x")
    y = model.add_binary("y")
    constraint = x + y <= 1
    assert constraint.satisfied_by({x: 1.0, y: 0.0})
    assert not constraint.satisfied_by({x: 1.0, y: 1.0})


def test_eq_constraint_satisfaction(model):
    x = model.add_binary("x")
    constraint = (2 * x) == 2
    assert constraint.satisfied_by({x: 1.0})
    assert not constraint.satisfied_by({x: 0.0})


def test_scaling_by_non_number_raises(model):
    x = model.add_binary("x")
    with pytest.raises(TypeError):
        (x + 1) * x  # quadratic terms are not representable


def test_combining_with_unsupported_type_raises(model):
    x = model.add_binary("x")
    with pytest.raises(TypeError):
        (x + 1) + "not a number"


def test_variable_identity_equality_survives(model):
    x = model.add_binary("x")
    y = model.add_binary("y")
    assert x == x            # identity: plain boolean True
    constraint = (x == y)    # different variables: a constraint object
    assert isinstance(constraint, Constraint)


def test_named_constraint(model):
    x = model.add_binary("x")
    constraint = (x + 0.0 <= 1.0).named("cap")
    assert constraint.name == "cap"
