"""Tests of the backend-parity fuzzing harness (``repro.fuzzing``)."""

from __future__ import annotations

import json

import pytest

from repro.circuits import get_circuit
from repro.dfg import textio
from repro.fuzzing import (
    BackendRun,
    ParityCase,
    check_parity,
    failure_payload,
    run_fuzz,
)

TIME_LIMIT = 60.0


def test_check_parity_reference_on_fig1(fig1_graph):
    case = check_parity(fig1_graph, time_limit=TIME_LIMIT)
    assert case.ok
    assert case.formulation == "reference"
    assert len(case.runs) == 2
    assert {run.backend for run in case.runs} == {"scipy", "bnb"}
    objectives = set(case.objectives.values())
    assert len(objectives) == 1  # both solved it to the same optimum


def test_check_parity_advbist_on_fig1(fig1_graph):
    case = check_parity(fig1_graph, formulation="advbist", k=1,
                        time_limit=TIME_LIMIT)
    assert case.ok
    assert case.k == 1
    assert all(run.optimal for run in case.runs)


def test_check_parity_rejects_unknown_formulation(fig1_graph):
    with pytest.raises(ValueError):
        check_parity(fig1_graph, formulation="quantum")


def test_parity_case_disagreement_detected(fig1_graph):
    case = ParityCase(circuit="x", seed=0, k=None, graph=fig1_graph, runs=[
        BackendRun("a", "optimal", 100.0, True, 0.0),
        BackendRun("b", "optimal", 101.0, True, 0.0),
    ])
    assert not case.ok
    split = ParityCase(circuit="x", seed=0, k=None, graph=fig1_graph, runs=[
        BackendRun("a", "optimal", 100.0, True, 0.0),
        BackendRun("b", "infeasible", None, False, 0.0),
    ])
    assert not split.ok
    agree_infeasible = ParityCase(circuit="x", seed=0, k=None, graph=fig1_graph,
                                  runs=[
        BackendRun("a", "infeasible", None, False, 0.0),
        BackendRun("b", "infeasible", None, False, 0.0),
    ])
    assert agree_infeasible.ok


def test_inconclusive_limit_runs_do_not_fail_parity(fig1_graph):
    """A backend stopped by a limit proved nothing — that is not a mismatch."""
    limited = ParityCase(circuit="x", seed=0, k=None, graph=fig1_graph, runs=[
        BackendRun("scipy", "optimal", 100.0, True, 0.1),
        # bnb hit its node limit with a worse incumbent: legitimately allowed
        BackendRun("bnb", "feasible", 108.0, False, 0.1),
    ])
    assert limited.ok
    assert limited.as_row()["parity"] == "n/a"
    no_incumbent = ParityCase(circuit="x", seed=0, k=None, graph=fig1_graph,
                              runs=[
        BackendRun("scipy", "optimal", 100.0, True, 0.1),
        BackendRun("bnb", "time_limit", None, False, 0.1),
    ])
    assert no_incumbent.ok
    # but a *proof* of infeasibility against a proven optimum is a real bug
    proof_clash = ParityCase(circuit="x", seed=0, k=None, graph=fig1_graph,
                             runs=[
        BackendRun("scipy", "optimal", 100.0, True, 0.1),
        BackendRun("bnb", "infeasible", None, False, 0.1),
    ])
    assert not proof_clash.ok
    # ... and so is an incumbent strictly *better* than a proven optimum
    # (the formulations minimise; a cheaper feasible design disproves the proof)
    better_incumbent = ParityCase(circuit="x", seed=0, k=None, graph=fig1_graph,
                                  runs=[
        BackendRun("scipy", "optimal", 100.0, True, 0.1),
        BackendRun("bnb", "feasible", 92.0, False, 0.1),
    ])
    assert not better_incumbent.ok


def test_run_fuzz_seed_overrides_config_seed(monkeypatch):
    import repro.fuzzing as fuzzing
    from repro.dfg.generate import GeneratorConfig

    seen = []

    def fake_parity(graph, formulation="reference", k=None, backends=(),
                    time_limit=None, seed=-1, **kw):
        seen.append(seed)
        return ParityCase(circuit=graph.name, seed=seed, k=None, graph=graph)

    monkeypatch.setattr(fuzzing, "check_parity", fake_parity)
    fuzzing.run_fuzz(count=2, seed=7, config=GeneratorConfig(num_operations=4))
    assert seen == [7, 8]  # explicit seed wins over the config's
    seen.clear()
    fuzzing.run_fuzz(count=2, config=GeneratorConfig(num_operations=4, seed=30))
    assert seen == [30, 31]  # no explicit seed: the config's seed holds


def test_run_fuzz_small_sweep_passes(tmp_path):
    report = run_fuzz(count=3, seed=0, num_operations=5,
                      time_limit=TIME_LIMIT, failure_dir=tmp_path / "fail")
    assert report.ok
    assert len(report.cases) == 3
    assert [case.seed for case in report.cases] == [0, 1, 2]
    assert not (tmp_path / "fail").exists()  # nothing written on success
    rows = report.rows()
    assert all(row["parity"] == "ok" for row in rows)


def test_run_fuzz_writes_replayable_failures(tmp_path, monkeypatch):
    import repro.fuzzing as fuzzing

    def broken_parity(graph, formulation="reference", k=None, backends=(),
                      time_limit=None, seed=-1, **kw):
        return ParityCase(circuit=graph.name, seed=seed, k=None, graph=graph,
                          runs=[BackendRun("a", "optimal", 1.0, True, 0.0),
                                BackendRun("b", "optimal", 2.0, True, 0.0)])

    monkeypatch.setattr(fuzzing, "check_parity", broken_parity)
    report = fuzzing.run_fuzz(count=2, seed=5, num_operations=4,
                              failure_dir=tmp_path / "fail")
    assert len(report.failures) == 2
    for case in report.failures:
        assert case.failure_path is not None and case.failure_path.exists()
        payload = json.loads(case.failure_path.read_text(encoding="utf-8"))
        assert payload["kind"] == "repro-fuzz-failure"
        assert payload["seed"] == case.seed
        # the embedded graph is replayable through textio
        replayed = textio.from_dict(payload["graph"])
        assert textio.to_dict(replayed) == payload["graph"]


def test_failure_payload_round_trips(fig1_graph):
    case = check_parity(fig1_graph, time_limit=TIME_LIMIT)
    payload = failure_payload(case)
    assert payload["formulation"] == "reference"
    rebuilt = textio.from_dict(payload["graph"])
    assert textio.to_dict(rebuilt) == textio.to_dict(fig1_graph)


def test_run_fuzz_validates_count():
    with pytest.raises(ValueError):
        run_fuzz(count=0)


def test_render_fuzz_report_derives_backend_columns(fig1_graph):
    from repro.reporting import render_fuzz_report

    case = ParityCase(circuit="x", seed=0, k=None, graph=fig1_graph, runs=[
        BackendRun("mysolver", "optimal", 123.0, True, 0.0),
        BackendRun("yoursolver", "optimal", 123.0, True, 0.0),
    ])
    table = render_fuzz_report([case.as_row()])
    assert "mysolver" in table and "yoursolver" in table
    assert "123.0" in table  # objectives are rendered, not blanked
