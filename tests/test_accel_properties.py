"""Property tests of the acceleration subsystem on random scheduled DFGs.

The acceleration pipeline claims to be *exact* — presolve, the portfolio
race and warm starts may change wall-clock, never objectives.  These tests
fuzz that claim over the seeded random-DFG generator: every circuit the
generator can produce must reach the same optimum with and without each
acceleration layer.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.formulation import AdvBistFormulation
from repro.core.reference import ReferenceFormulation
from repro.dfg.generate import generate_scheduled
from repro.ilp import SolveStatus

TIME_LIMIT = 60.0

_SETTINGS = dict(max_examples=8, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       ops=st.integers(min_value=3, max_value=7))
def test_presolved_reference_solve_matches_plain(seed, ops):
    graph = generate_scheduled(seed=seed, num_operations=ops)
    plain = ReferenceFormulation(graph).solve(
        backend="scipy", time_limit=TIME_LIMIT)
    accel = ReferenceFormulation(graph).solve(
        backend="scipy", time_limit=TIME_LIMIT, presolve=True)
    assert plain.solution.status is SolveStatus.OPTIMAL
    assert accel.solution.status is SolveStatus.OPTIMAL
    assert accel.solution.objective == pytest.approx(plain.solution.objective)
    assert accel.design.area().total == plain.design.area().total


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       ops=st.integers(min_value=3, max_value=5))
def test_presolved_advbist_solve_matches_plain(seed, ops):
    graph = generate_scheduled(seed=seed, num_operations=ops)
    k = max(1, len(graph.module_ids) - 1)
    plain = AdvBistFormulation(graph, k).solve(
        backend="scipy", time_limit=TIME_LIMIT)
    accel = AdvBistFormulation(graph, k).solve(
        backend="scipy", time_limit=TIME_LIMIT, presolve=True)
    # Some circuits are BIST-infeasible for this k; presolve must agree.
    assert accel.solution.status is plain.solution.status
    if plain.solution.status is SolveStatus.OPTIMAL:
        assert accel.solution.objective == pytest.approx(plain.solution.objective)
        assert accel.design.area().total == plain.design.area().total


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       ops=st.integers(min_value=3, max_value=7))
def test_portfolio_matches_single_backend_objective(seed, ops):
    graph = generate_scheduled(seed=seed, num_operations=ops)
    single = ReferenceFormulation(graph).solve(
        backend="scipy", time_limit=TIME_LIMIT)
    raced = ReferenceFormulation(graph).solve(
        backend="portfolio", time_limit=TIME_LIMIT)
    assert single.solution.status is SolveStatus.OPTIMAL
    assert raced.solution.status is SolveStatus.OPTIMAL
    assert raced.solution.objective == pytest.approx(single.solution.objective)


@settings(**_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       ops=st.integers(min_value=3, max_value=5))
def test_warm_started_chain_matches_cold_solves(seed, ops):
    """Ascending-k warm starts reproduce every cold outcome exactly.

    Some generated circuits are BIST-infeasible for small ``k`` (no valid
    signature-register assignment exists); the warm-started chain must
    agree on those verdicts too, not just on the optima.
    """
    graph = generate_scheduled(seed=seed, num_operations=ops)
    max_k = min(2, len(graph.module_ids))
    hint = None
    for k in range(1, max_k + 1):
        cold = AdvBistFormulation(graph, k).solve(
            backend="scipy", time_limit=TIME_LIMIT)
        warm = AdvBistFormulation(graph, k).solve(
            backend="bnb", time_limit=TIME_LIMIT, incumbent_hint=hint)
        if warm.solution.status is SolveStatus.TIME_LIMIT:
            # The pure-Python B&B is ~50x slower than scipy: an unlucky
            # circuit can outgrow the wall-clock budget without any
            # exactness violation.  Like the fuzz harness's "parity n/a"
            # rows and the bench runner's unproven entries, a limited
            # solve is inconclusive, not a mismatch.
            assume(False)
        assert warm.solution.status is cold.solution.status
        if cold.solution.status is SolveStatus.OPTIMAL:
            assert warm.solution.objective == pytest.approx(
                cold.solution.objective)
            hint = warm.solution.objective
