"""End-to-end tests: the k-sweep synthesizer, the comparison harness and the
table renderers (the machinery behind Tables 2 and 3)."""

import pytest

from repro.core import AdvBistSynthesizer, synthesize_bist, synthesize_reference
from repro.reporting import (
    compare_methods,
    extra_register_penalty,
    format_table,
    render_table1,
    render_table2,
    render_table3,
)


@pytest.fixture(scope="module")
def fig1_sweep(fig1_graph):
    return AdvBistSynthesizer(fig1_graph, time_limit=60).sweep()


def test_sweep_covers_every_k(fig1_sweep, fig1_graph):
    assert [entry.k for entry in fig1_sweep.entries] == list(
        range(1, len(fig1_graph.module_ids) + 1)
    )
    assert fig1_sweep.circuit == "fig1"


def test_sweep_overhead_monotone_on_fig1(fig1_sweep):
    """More test sessions can only relax the BIST constraints, so the optimal
    area overhead is non-increasing in k (the Table 2 trend)."""
    overheads = [entry.overhead_percent for entry in fig1_sweep.entries]
    assert all(b <= a + 1e-9 for a, b in zip(overheads, overheads[1:]))
    assert fig1_sweep.best_entry().k == fig1_sweep.entries[-1].k


def test_sweep_rows_are_table2_shaped(fig1_sweep):
    rows = fig1_sweep.table2_rows()
    assert {"circuit", "k", "overhead_percent", "area", "optimal", "solve_seconds"} <= set(rows[0])
    text = render_table2(rows)
    assert "Table 2" in text and "fig1" in text


def test_sweep_reference_cached(fig1_graph):
    synthesizer = AdvBistSynthesizer(fig1_graph, time_limit=60)
    first = synthesizer.synthesize_reference()
    second = synthesizer.synthesize_reference()
    assert first is second


def test_sweep_max_k_clamped(fig1_graph):
    result = AdvBistSynthesizer(fig1_graph, time_limit=60).sweep(max_k=10)
    assert len(result.entries) == len(fig1_graph.module_ids)


def test_convenience_functions(fig1_graph):
    reference = synthesize_reference(fig1_graph)
    design = synthesize_bist(fig1_graph, k=2)
    assert design.overhead_vs(reference.area().total) >= 0.0
    assert design.method == "ADVBIST"


def test_compare_methods_fig1(fig1_graph):
    result = compare_methods(fig1_graph, time_limit=60)
    assert set(result.designs) == {"ADVBIST", "ADVAN", "RALLOC", "BITS"}
    overheads = result.overheads()
    # the optimal ILP wins or ties on every circuit (the Table 3 claim)
    assert overheads["ADVBIST"] <= min(overheads.values()) + 1e-9
    assert result.winner() == "ADVBIST"
    rows = result.rows()
    assert rows[0]["Method"] == "Ref."
    assert len(rows) == 5
    text = render_table3(rows, circuit="fig1")
    assert "ADVBIST" in text and "Ref." in text


def test_compare_methods_subset_and_unknown(fig1_graph):
    result = compare_methods(fig1_graph, methods=("ADVAN",), time_limit=30)
    assert set(result.designs) == {"ADVAN"}
    with pytest.raises(ValueError):
        compare_methods(fig1_graph, methods=("NOPE",), time_limit=30)


def test_extra_register_penalty_positive(fig1_graph):
    study = extra_register_penalty(fig1_graph, time_limit=30)
    assert study["extra_registers"] == 1
    # A register costs 208 transistors; adding one can be partially offset by
    # smaller muxes but never end up free on this example.
    assert study["penalty"] > 0
    assert study["enlarged_area"] == study["base_area"] + study["penalty"]


def test_render_table1_contains_paper_numbers():
    text = render_table1()
    for number in ("208", "256", "304", "388", "596", "80", "350"):
        assert number in text


def test_format_table_handles_empty_and_missing_columns():
    assert "(no rows)" in format_table([], title="empty")
    text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
    assert "a" in text and "b" in text
