"""Tests of the Session façade: dispatch, caching, batches, error envelopes."""

import json

import pytest

from repro.api import (
    BaselineJob,
    CompareJob,
    FuzzJob,
    Session,
    SweepJob,
    SynthesizeJob,
)


@pytest.fixture()
def session(tmp_path):
    with Session(time_limit=60.0, cache_dir=str(tmp_path / "cache")) as s:
        yield s


# ----------------------------------------------------------------------
# one handler per job kind
# ----------------------------------------------------------------------
def test_synthesize_job(session):
    envelope = session.run(SynthesizeJob(circuit="fig1", k=2))
    assert envelope.ok and envelope.kind == "synthesize"
    payload = envelope.payload
    assert payload["k"] == 2
    assert payload["verified"] is True
    assert payload["table3"][0]["Method"] == "Ref."
    assert payload["table3"][1]["Method"] == "ADVBIST"
    assert payload["design"]["registers"]  # structural netlist payload
    assert json.loads(envelope.to_json())  # fully serialisable


def test_sweep_job(session):
    envelope = session.run(SweepJob(circuit="fig1", max_k=2))
    assert envelope.ok
    payload = envelope.payload
    assert [row["k"] for row in payload["rows"]] == [1, 2]
    assert all(row["verified"] for row in payload["rows"])
    assert payload["best"]["k"] in (1, 2)
    assert len(envelope.reports) == 3  # reference + two ADVBIST solves


def test_compare_job(session):
    envelope = session.run(CompareJob(circuit="fig1", k=2))
    assert envelope.ok
    payload = envelope.payload
    assert payload["winner"] == "ADVBIST"
    assert set(payload["overheads"]) == {"ADVBIST", "ADVAN", "RALLOC", "BITS"}
    assert all(payload["verified"].values())


def test_baseline_job_defaults_k_to_module_count(session, fig1_graph):
    envelope = session.run(BaselineJob(circuit="fig1", method="ADVAN"))
    assert envelope.ok
    assert envelope.payload["k"] == len(fig1_graph.module_ids)
    assert envelope.payload["verified"] is True


def test_fuzz_job(session, tmp_path):
    envelope = session.run(FuzzJob(count=2, seed=0, ops=5,
                                   failure_dir=str(tmp_path / "fails")))
    assert envelope.ok
    assert envelope.payload["ok"] is True
    assert envelope.payload["cases"] == 2
    assert len(envelope.payload["rows"]) == 2


def test_inline_graph_job_is_elaborated(session):
    from repro.dfg.generate import generate_behavioral
    from repro.dfg.textio import to_dict as graph_to_dict

    graph = generate_behavioral(seed=0, num_operations=5)
    envelope = session.run(BaselineJob(graph=graph_to_dict(graph),
                                       method="RALLOC"))
    assert envelope.ok
    assert envelope.payload["circuit"] == graph.name
    assert envelope.payload["verified"] is True


# ----------------------------------------------------------------------
# cache behaviour (the warm-session contract)
# ----------------------------------------------------------------------
def test_second_identical_job_reports_cached(session):
    first = session.run(SynthesizeJob(circuit="fig1", k=2))
    second = session.run(SynthesizeJob(circuit="fig1", k=2))
    assert first.cached is False
    assert second.cached is True
    # same payload either way
    assert first.payload["table3"] == second.payload["table3"]


def test_use_cache_false_overrides_session_cache(session):
    session.run(SweepJob(circuit="fig1", max_k=1))
    bypass = session.run(SweepJob(circuit="fig1", max_k=1, use_cache=False))
    assert bypass.cached is False


def test_cache_info_and_clear(session):
    before = session.cache_info()
    assert before["enabled"] and before["entries"] == 0
    session.run(SweepJob(circuit="fig1", max_k=1))
    assert session.cache_info()["entries"] > 0
    removed = session.cache_clear()
    assert removed > 0
    assert session.cache_info()["entries"] == 0


def test_disabled_cache_session(tmp_path):
    with Session(cache=False) as s:
        info = s.cache_info()
    assert info == {"enabled": False, "root": None, "entries": 0, "bytes": 0}


def test_session_rejects_nonpositive_jobs():
    from repro.core.engine import EngineError

    with pytest.raises(EngineError):
        Session(jobs=0)
    with pytest.raises(EngineError):
        Session(jobs=-4)


# ----------------------------------------------------------------------
# error envelopes
# ----------------------------------------------------------------------
def test_unknown_circuit_becomes_error_envelope(session):
    envelope = session.run(SweepJob(circuit="not_a_circuit"))
    assert not envelope.ok
    # the registry's KeyError is re-raised as a bad-input JobSpecError so
    # genuine KeyError bugs in handlers still crash instead of hiding
    assert envelope.error["type"] == "JobSpecError"
    assert "not_a_circuit" in envelope.error["message"]
    assert envelope.payload == {}
    json.loads(envelope.to_json())  # still a valid wire object


def test_bad_inline_graph_becomes_error_envelope(session):
    envelope = session.run(SynthesizeJob(graph={"definitely": "not a DFG"}))
    assert not envelope.ok
    assert envelope.error["type"] in ("DFGError", "JobSpecError", "ValueError")


def test_baseline_failure_becomes_error_envelope(session):
    """A heuristic that cannot complete a plan is a structured error.

    The seed-4 random circuit has a module port RALLOC cannot reach with
    any TPG register, which raises BaselineError deep in the engine.
    """
    from repro.dfg.generate import generate_behavioral
    from repro.dfg.textio import to_dict as graph_to_dict

    graph = generate_behavioral(seed=4, num_operations=5)
    envelope = session.run(BaselineJob(graph=graph_to_dict(graph),
                                       method="RALLOC"))
    assert not envelope.ok
    assert envelope.error["type"] == "BaselineError"


# ----------------------------------------------------------------------
# batches and progress events
# ----------------------------------------------------------------------
def test_run_many_emits_progress_events(session):
    events = []
    specs = [SweepJob(circuit="fig1", max_k=1),
             SweepJob(circuit="not_a_circuit")]
    envelopes = session.run_many(specs, progress=events.append)
    assert [e.status for e in envelopes] == ["ok", "error"]
    names = [event["event"] for event in events]
    assert names == ["batch_started", "job_started", "job_finished",
                     "job_started", "job_finished", "batch_finished"]
    finished = [event for event in events if event["event"] == "job_finished"]
    assert [event["index"] for event in finished] == [0, 1]
    assert events[-1]["ok"] == 1 and events[-1]["errors"] == 1


def test_submit_and_drain(session):
    assert session.submit(SweepJob(circuit="fig1", max_k=1)) == 0
    assert session.submit(BaselineJob(circuit="fig1", method="BITS")) == 1
    assert len(session.pending) == 2
    envelopes = session.drain()
    assert [e.kind for e in envelopes] == ["sweep", "baseline"]
    assert session.pending == ()


def test_broken_worker_pool_becomes_error_envelope_and_heals(tmp_path):
    """A worker dying mid-solve must not kill the session (or the daemon).

    The job fails with a structured error, the broken pool is dropped, and
    the next job runs on a fresh pool.
    """
    from concurrent.futures.process import BrokenProcessPool

    class ExplodingPool:
        def map(self, fn, tasks):
            raise BrokenProcessPool("a worker was killed")

        def shutdown(self):
            pass

    with Session(jobs=2, cache=False, time_limit=60.0) as s:
        s._executor._pool = ExplodingPool()
        envelope = s.run(SweepJob(circuit="fig1"))
        assert not envelope.ok
        assert envelope.error["type"] == "BrokenProcessPool"
        assert s._executor._pool is None  # broken pool was dropped
        healed = s.run(SweepJob(circuit="fig1"))  # fresh pool, clean run
        assert healed.ok


def test_parallel_session_reuses_one_pool(tmp_path):
    with Session(jobs=2, cache=False, time_limit=60.0) as s:
        first = s.run(SweepJob(circuit="fig1"))
        pool = s._executor._pool
        assert pool is not None  # persistent pool created on first use
        second = s.run(SweepJob(circuit="fig1"))
        assert s._executor._pool is pool  # ... and reused, not rebuilt
    assert s._executor._pool is None  # closed on exit
    assert first.ok and second.ok
    assert first.payload["overheads"] == second.payload["overheads"]
