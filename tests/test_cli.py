"""Tests of the command-line interface."""

from pathlib import Path

import pytest

from repro.cli import build_parser, main

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def _registry_guard():
    """Unregister any circuit a CLI command dynamically registered."""
    from repro.circuits import list_circuits, unregister_circuit

    before = set(list_circuits())
    yield
    for name in set(list_circuits()) - before:
        unregister_circuit(name)


def test_list_command(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    for name in ("fig1", "tseng", "paulin", "wavelet6"):
        assert name in output


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    output = capsys.readouterr().out
    assert "596" in output and "BILBO" in output


def test_synthesize_command_on_fig1(capsys):
    assert main(["synthesize", "fig1", "--k", "2", "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "ADVBIST" in output
    assert "verified: True" in output


def test_sweep_command_on_fig1(capsys):
    assert main(["sweep", "fig1", "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "Table 2" in output
    assert "fig1" in output


def test_compare_command_on_fig1(capsys):
    assert main(["compare", "fig1", "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "lowest overhead: ADVBIST" in output


def test_baseline_command(capsys):
    assert main(["baseline", "advan", "tseng"]) == 0
    output = capsys.readouterr().out
    assert "ADVAN" in output
    assert "verified: True" in output


def test_backends_command(capsys):
    assert main(["backends"]) == 0
    output = capsys.readouterr().out
    assert "scipy" in output and "bnb" in output
    assert "sparse" in output


def test_sweep_with_stats_and_jobs(capsys):
    assert main(["sweep", "fig1", "--stats", "--jobs", "2", "--no-cache",
                 "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "nnz" in output and "backend" in output
    assert "scipy" in output


def test_sweep_uses_design_cache_on_second_run(capsys):
    assert main(["sweep", "fig1", "--time-limit", "60"]) == 0
    capsys.readouterr()
    assert main(["sweep", "fig1", "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "served from the design cache" in output


def test_sweep_max_k_limits_grid(capsys):
    assert main(["sweep", "fig1", "--max-k", "1", "--no-cache",
                 "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "fig1     1" in output
    assert "fig1     2" not in output


def test_synthesize_with_explicit_backend(capsys):
    assert main(["synthesize", "fig1", "--k", "2", "--backend", "scipy",
                 "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "solver: scipy" in output


def test_backend_flag_accepts_aliases():
    parser = build_parser()
    args = parser.parse_args(["sweep", "fig1", "--backend", "branch_and_bound"])
    assert args.backend == "branch_and_bound"


def test_backend_flag_rejects_unknown_name():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["sweep", "fig1", "--backend", "glpk"])


def test_warm_start_flag_parses_and_reaches_the_session():
    from repro.cli import _session_from_args

    parser = build_parser()
    args = parser.parse_args(["sweep", "fig1"])
    assert args.warm_start is True
    args = parser.parse_args(["sweep", "fig1", "--no-warm-start"])
    assert args.warm_start is False
    with _session_from_args(args) as session:
        assert session.warm_start is False


def test_unknown_circuit_reports_error(capsys):
    assert main(["synthesize", "not_a_circuit"]) == 2
    assert "error" in capsys.readouterr().err


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_parser_rejects_unknown_baseline():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["baseline", "magic", "tseng"])


# ----------------------------------------------------------------------
# numeric flag validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("argv", [
    ["sweep", "fig1", "--jobs", "0"],
    ["sweep", "fig1", "--jobs", "-2"],
    ["sweep", "fig1", "--jobs", "two"],
    ["sweep", "fig1", "--max-k", "0"],
    ["sweep", "fig1", "--max-k", "-1"],
    ["synthesize", "fig1", "--k", "0"],
    ["synthesize", "fig1", "--k", "-3"],
    ["compare", "fig1", "--k", "0"],
    ["sweep", "fig1", "--time-limit", "0"],
    ["sweep", "fig1", "--time-limit", "-5"],
    ["fuzz", "--count", "0"],
    ["fuzz", "--count", "-1"],
    ["fuzz", "--seed", "-1"],
    ["fuzz", "--ops", "0"],
    ["synth", "x.json", "--jobs", "0"],
    ["synth", "x.json", "--resources", "alu"],
    ["synth", "x.json", "--resources", "alu=0"],
    ["synth", "x.json", "--resources", "alu=many"],
])
def test_bad_numeric_flags_fail_at_parse_time(capsys, argv):
    parser = build_parser()
    with pytest.raises(SystemExit) as excinfo:
        parser.parse_args(argv)
    assert excinfo.value.code == 2
    assert "must" in capsys.readouterr().err


def test_good_numeric_flags_parse():
    parser = build_parser()
    args = parser.parse_args(["fuzz", "--count", "5", "--seed", "0", "--ops", "4"])
    assert (args.count, args.seed, args.ops) == (5, 0, 4)
    args = parser.parse_args(["synth", "x.json", "--resources", "alu=1, mult=2"])
    assert args.resources == {"alu": 1, "mult": 2}


# ----------------------------------------------------------------------
# the synth command (user DFG files)
# ----------------------------------------------------------------------
@pytest.fixture()
def behavioral_json(tmp_path):
    from repro.dfg import textio
    from repro.dfg.generate import generate_behavioral

    graph = generate_behavioral(seed=9, num_operations=5)
    path = tmp_path / "user_circuit.json"
    textio.save(graph, path)
    return path, graph.name


def test_synth_runs_pipeline_on_example_file(capsys):
    assert main(["synth", str(EXAMPLES / "biquad.json"), "--method", "advbist",
                 "--max-k", "1", "--no-cache", "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "front end:" in output
    assert "Table 2" in output
    assert "biquad" in output


def test_synth_single_k_renders_table3(capsys):
    assert main(["synth", str(EXAMPLES / "biquad.json"), "--method", "advbist",
                 "--k", "1", "--no-cache", "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "Table 3" in output
    assert "ADVBIST" in output and "verified=True" in output


def test_synth_behavioral_file_is_scheduled_first(capsys, behavioral_json):
    path, name = behavioral_json
    assert main(["synth", str(path), "--method", "ralloc", "--no-cache",
                 "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "front end:" in output
    assert "RALLOC" in output
    # the circuit was registered under its JSON name on the way through
    from repro.circuits import list_circuits
    assert name in list_circuits()


def test_synth_missing_file_reports_clean_error(capsys):
    assert main(["synth", "does/not/exist.json"]) == 2
    assert "no such DFG file" in capsys.readouterr().err


def test_synth_invalid_json_reports_clean_error(capsys, tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{nope", encoding="utf-8")
    assert main(["synth", str(path)]) == 2
    assert "error" in capsys.readouterr().err


def test_synth_directory_path_reports_clean_error(capsys, tmp_path):
    assert main(["synth", str(tmp_path)]) == 2
    assert "cannot read DFG file" in capsys.readouterr().err


def test_synth_binary_file_reports_clean_error(capsys, tmp_path):
    path = tmp_path / "binary.json"
    path.write_bytes(b"\xff\xfe\x00garbage")
    assert main(["synth", str(path)]) == 2
    assert "error" in capsys.readouterr().err


# ----------------------------------------------------------------------
# the fuzz command
# ----------------------------------------------------------------------
def test_fuzz_command_small_run(capsys, tmp_path):
    assert main(["fuzz", "--count", "2", "--seed", "0", "--ops", "5",
                 "--out", str(tmp_path / "fail"), "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "Fuzz report" in output
    assert "all 2 random circuits agree" in output
    assert not (tmp_path / "fail").exists()


def test_fuzz_command_reports_failures(capsys, tmp_path, monkeypatch):
    import repro.cli  # noqa: F401 - ensure module import before patching
    from repro import fuzzing
    from repro.fuzzing import BackendRun, ParityCase

    def broken_parity(graph, formulation="reference", k=None, backends=(),
                      time_limit=None, seed=-1, **kw):
        return ParityCase(circuit=graph.name, seed=seed, k=None, graph=graph,
                          runs=[BackendRun("a", "optimal", 1.0, True, 0.0),
                                BackendRun("b", "optimal", 2.0, True, 0.0)])

    monkeypatch.setattr(fuzzing, "check_parity", broken_parity)
    out_dir = tmp_path / "fail"
    assert main(["fuzz", "--count", "1", "--seed", "3", "--ops", "4",
                 "--out", str(out_dir)]) == 1
    captured = capsys.readouterr()
    assert "FAIL" in captured.out
    assert "replayable" in captured.err
    written = list(out_dir.glob("*.json"))
    assert len(written) == 1


# ----------------------------------------------------------------------
# --json envelopes (synthesize / sweep / compare)
# ----------------------------------------------------------------------
def _envelope_from(capsys):
    import json

    return json.loads(capsys.readouterr().out)


def test_synthesize_json_emits_envelope(capsys):
    assert main(["synthesize", "fig1", "--k", "2", "--json",
                 "--time-limit", "60"]) == 0
    envelope = _envelope_from(capsys)
    assert envelope["status"] == "ok"
    assert envelope["kind"] == "synthesize"
    # solver knobs live on the session, so the spec leaves them deferred
    assert envelope["job"] == {"job": "synthesize", "schema": 1,
                               "circuit": "fig1", "graph": None, "k": 2,
                               "backend": None, "time_limit": None,
                               "use_cache": None, "presolve": None,
                               "cuts": None, "batch": None}
    assert envelope["payload"]["verified"] is True


def test_sweep_json_emits_envelope(capsys):
    assert main(["sweep", "fig1", "--max-k", "1", "--json", "--no-cache",
                 "--time-limit", "60"]) == 0
    envelope = _envelope_from(capsys)
    assert envelope["status"] == "ok"
    assert [row["k"] for row in envelope["payload"]["rows"]] == [1]


def test_compare_json_emits_envelope(capsys):
    assert main(["compare", "fig1", "--k", "2", "--json", "--no-cache",
                 "--time-limit", "60"]) == 0
    envelope = _envelope_from(capsys)
    assert envelope["payload"]["winner"] == "ADVBIST"


def test_json_error_envelope_and_exit_code(capsys):
    assert main(["sweep", "not_a_circuit", "--json"]) == 2
    envelope = _envelope_from(capsys)
    assert envelope["status"] == "error"
    assert envelope["error"]["type"] == "JobSpecError"


# ----------------------------------------------------------------------
# the cache subcommand and --cache-dir
# ----------------------------------------------------------------------
def test_cache_dir_flag_routes_the_design_cache(capsys, tmp_path):
    cache_dir = tmp_path / "my-cache"
    assert main(["sweep", "fig1", "--max-k", "1", "--cache-dir", str(cache_dir),
                 "--time-limit", "60"]) == 0
    capsys.readouterr()
    assert any(cache_dir.glob("*/*.pkl"))

    assert main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
    output = capsys.readouterr().out
    assert str(cache_dir) in output
    assert "entries:    2" in output

    assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
    assert "removed 2 cached designs" in capsys.readouterr().out
    assert not any(cache_dir.glob("*/*.pkl"))


def test_cache_info_uses_env_default(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
    assert main(["cache", "info"]) == 0
    assert str(tmp_path / "env-cache") in capsys.readouterr().out


# ----------------------------------------------------------------------
# the serve command
# ----------------------------------------------------------------------
def test_serve_command_round_trips_specs_over_stdio(capsys, monkeypatch):
    import io
    import json

    requests = ('{"job": "synthesize", "circuit": "fig1", "k": 2}\n'
                '{"job": "sweep", "circuit": "fig1", "max_k": 1}\n')
    monkeypatch.setattr("sys.stdin", io.StringIO(requests))
    assert main(["serve", "--quiet", "--time-limit", "60"]) == 0
    lines = capsys.readouterr().out.splitlines()
    responses = [json.loads(line) for line in lines]
    assert [r["type"] for r in responses] == ["result", "result"]
    assert [r["envelope"]["kind"] for r in responses] == ["synthesize", "sweep"]
    assert all(r["envelope"]["status"] == "ok" for r in responses)
