"""Tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    for name in ("fig1", "tseng", "paulin", "wavelet6"):
        assert name in output


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    output = capsys.readouterr().out
    assert "596" in output and "BILBO" in output


def test_synthesize_command_on_fig1(capsys):
    assert main(["synthesize", "fig1", "--k", "2", "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "ADVBIST" in output
    assert "verified: True" in output


def test_sweep_command_on_fig1(capsys):
    assert main(["sweep", "fig1", "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "Table 2" in output
    assert "fig1" in output


def test_compare_command_on_fig1(capsys):
    assert main(["compare", "fig1", "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "lowest overhead: ADVBIST" in output


def test_baseline_command(capsys):
    assert main(["baseline", "advan", "tseng"]) == 0
    output = capsys.readouterr().out
    assert "ADVAN" in output
    assert "verified: True" in output


def test_backends_command(capsys):
    assert main(["backends"]) == 0
    output = capsys.readouterr().out
    assert "scipy" in output and "bnb" in output
    assert "sparse" in output


def test_sweep_with_stats_and_jobs(capsys):
    assert main(["sweep", "fig1", "--stats", "--jobs", "2", "--no-cache",
                 "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "nnz" in output and "backend" in output
    assert "scipy" in output


def test_sweep_uses_design_cache_on_second_run(capsys):
    assert main(["sweep", "fig1", "--time-limit", "60"]) == 0
    capsys.readouterr()
    assert main(["sweep", "fig1", "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "served from the design cache" in output


def test_sweep_max_k_limits_grid(capsys):
    assert main(["sweep", "fig1", "--max-k", "1", "--no-cache",
                 "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "fig1     1" in output
    assert "fig1     2" not in output


def test_synthesize_with_explicit_backend(capsys):
    assert main(["synthesize", "fig1", "--k", "2", "--backend", "scipy",
                 "--time-limit", "60"]) == 0
    output = capsys.readouterr().out
    assert "solver: scipy" in output


def test_backend_flag_accepts_aliases():
    parser = build_parser()
    args = parser.parse_args(["sweep", "fig1", "--backend", "branch_and_bound"])
    assert args.backend == "branch_and_bound"


def test_backend_flag_rejects_unknown_name():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["sweep", "fig1", "--backend", "glpk"])


def test_unknown_circuit_reports_error(capsys):
    assert main(["synthesize", "not_a_circuit"]) == 2
    assert "error" in capsys.readouterr().err


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_parser_rejects_unknown_baseline():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["baseline", "magic", "tseng"])
