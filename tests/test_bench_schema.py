"""Schema, fingerprint and migration tests — including the checked-in
``BENCH_regress.json`` regression contract."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import (
    BenchSchemaError,
    environment_fingerprint,
    migrate_report,
    validate_report,
)
from repro.bench.compare import flatten_timings, load_report
from repro.bench.schema import BENCH_SCHEMA

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKED_IN_REPORT = REPO_ROOT / "BENCH_regress.json"


# ----------------------------------------------------------------------
# the checked-in perf baseline
# ----------------------------------------------------------------------
def test_checked_in_report_is_current_schema_2():
    data = json.loads(CHECKED_IN_REPORT.read_text(encoding="utf-8"))
    assert data["schema"] == BENCH_SCHEMA
    assert data["bench"] == "repro.bench"


def test_checked_in_report_validates():
    """The committed baseline must stay loadable without migration."""
    report = load_report(CHECKED_IN_REPORT)
    assert report["schema"] == BENCH_SCHEMA
    validate_report(report)  # raises on any malformation
    assert set(report["suites"]) == {"solver-micro"}
    # the CI gate's batched scenario is part of the committed baseline
    scenarios = report["suites"]["solver-micro"]["scenarios"]
    assert scenarios["cold_batched"]["batch"] is True


def test_checked_in_report_asserts_parity():
    """A baseline with broken parity must never be committed."""
    report = load_report(CHECKED_IN_REPORT)
    assert report["parity_ok"] is True
    for suite in report["suites"].values():
        assert suite["parity_ok"] is True
        assert suite["parity_mismatches"] == []


def test_checked_in_report_keeps_comparable_unit_keys():
    """The CI gate matches on scenario/unit keys; the baseline must
    expose the labels the live solver-micro suite produces."""
    flat = flatten_timings(load_report(CHECKED_IN_REPORT))
    for scenario in ("cold_baseline", "cold_accel", "cold_cuts",
                     "cold_batched", "warm_cache"):
        assert f"{scenario}/sweep:fig1" in flat
        assert f"{scenario}/sweep:paulin" in flat
    assert all(seconds >= 0 for seconds in flat.values())


# ----------------------------------------------------------------------
# migration shim
# ----------------------------------------------------------------------
def _legacy(scenarios=None, **overrides):
    report = {
        "schema": 1,
        "bench": "bench_regress",
        "python": "3.12.0",
        "machine": "aarch64",
        "parity_ok": True,
        "parity_mismatches": [],
        "unproven_entries": [],
        "config": {"circuits": ["fig1"], "max_k": 2, "time_limit": 30.0},
        "scenarios": scenarios if scenarios is not None else {
            "cold_baseline": {
                "scenario": "cold_baseline", "backend": "auto",
                "presolve": False, "warm_start": False,
                "wall_seconds": 1.0,
                "per_job_seconds": {"sweep:fig1": 0.8, "compare:fig1": 0.2},
                "cached_solves": 0, "total_solves": 4,
                "objectives": {"sweep:fig1:k=1": 1202.0,
                               "compare:fig1:ADVBIST": 1202.0},
                "proven": {"sweep:fig1:k=1": True,
                           "compare:fig1:ADVBIST": True},
            },
        },
    }
    report.update(overrides)
    return report


def test_migration_splits_by_unit_prefix():
    report = migrate_report(_legacy())
    table2 = report["suites"]["table2"]["scenarios"]["cold_baseline"]
    table3 = report["suites"]["table3"]["scenarios"]["cold_baseline"]
    assert table2["per_unit_seconds"] == {"sweep:fig1": 0.8}
    assert table3["per_unit_seconds"] == {"compare:fig1": 0.2}
    # objectives are filtered by the same prefix
    assert set(table2["objectives"]) == {"sweep:fig1:k=1"}
    assert set(table3["objectives"]) == {"compare:fig1:ADVBIST"}
    # per-suite wall is the sum of that suite's units
    assert table2["wall_seconds"] == pytest.approx(0.8)


def test_migration_passes_schema_2_through():
    migrated = migrate_report(_legacy())
    assert migrate_report(migrated) == migrated


def test_migration_rejects_unknown_versions():
    with pytest.raises(BenchSchemaError, match="cannot migrate version 99"):
        migrate_report({"schema": 99, "bench": "bench_regress"})
    with pytest.raises(BenchSchemaError, match="unknown legacy bench"):
        migrate_report({"schema": 1, "bench": "someone-elses-bench",
                        "scenarios": {}, "config": {}})


def test_migration_rejects_empty_legacy_grid():
    with pytest.raises(BenchSchemaError, match="no sweep:/compare: units"):
        migrate_report(_legacy(scenarios={}))


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def test_validate_rejects_legacy_schema_directly():
    with pytest.raises(BenchSchemaError, match="migrate_report"):
        validate_report(_legacy())


def test_validate_names_the_offending_path():
    report = migrate_report(_legacy())
    report["suites"]["table2"]["scenarios"]["cold_baseline"].pop("wall_seconds")
    with pytest.raises(BenchSchemaError, match=r"wall_seconds.*missing"):
        validate_report(report)


def test_validate_cross_checks_parity_aggregate():
    report = migrate_report(_legacy())
    report["suites"]["table2"]["parity_ok"] = False
    with pytest.raises(BenchSchemaError, match="parity_ok"):
        validate_report(report)


def test_validate_rejects_non_numeric_timings():
    report = migrate_report(_legacy())
    scenario = report["suites"]["table2"]["scenarios"]["cold_baseline"]
    scenario["per_unit_seconds"]["sweep:fig1"] = "fast"
    with pytest.raises(BenchSchemaError, match="expected a number"):
        validate_report(report)


# ----------------------------------------------------------------------
# environment fingerprint
# ----------------------------------------------------------------------
def test_environment_fingerprint_shape():
    fingerprint = environment_fingerprint()
    assert set(fingerprint) == {
        "python", "implementation", "platform", "machine", "scipy",
        "numpy", "highs_available", "repro_version",
    }
    assert isinstance(fingerprint["highs_available"], bool)
    assert fingerprint["repro_version"]


def test_load_report_names_the_file_on_errors(tmp_path):
    with pytest.raises(BenchSchemaError, match="no such report"):
        load_report(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(BenchSchemaError, match="bad.json"):
        load_report(bad)
