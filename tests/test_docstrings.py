"""The docstring-audit contract of the public API surface.

Every symbol exported from ``repro`` and ``repro.api`` must carry a
docstring, and the API/bench layers must embed *executable* doctest
examples (collected by the tier-1 run via ``--doctest-modules``, see
``pytest.ini``).  These tests keep both properties from regressing.
"""

from __future__ import annotations

import doctest
import importlib
import inspect

import pytest

import repro
import repro.api

#: (module, its public-name list) pairs the docstring audit covers.
_PUBLIC_SURFACES = [
    ("repro", repro.__all__),
    ("repro.api", repro.api.__all__),
]

#: Modules whose docstrings must contain at least one executable example.
_DOCTESTED_MODULES = [
    "repro",
    "repro._flags",
    "repro.api.envelope",
    "repro.api.jobs",
    "repro.api.session",
    "repro.bench",
    "repro.bench.compare",
    "repro.bench.schema",
    "repro.bench.suites",
]


def _public_symbols():
    for module_name, names in _PUBLIC_SURFACES:
        module = importlib.import_module(module_name)
        for name in names:
            if name.startswith("__"):
                continue  # dunders like __version__ are data, not API
            yield module_name, name, getattr(module, name)


@pytest.mark.parametrize(
    "module_name, name, obj",
    [(m, n, o) for m, n, o in _public_symbols()],
    ids=[f"{m}.{n}" for m, n, _ in _public_symbols()],
)
def test_every_public_symbol_has_a_docstring(module_name, name, obj):
    if not (inspect.isclass(obj) or callable(obj) or inspect.ismodule(obj)):
        pytest.skip(f"{name} is a data constant")
    doc = (getattr(obj, "__doc__", None) or "").strip()
    assert doc, f"{module_name}.{name} is exported without a docstring"
    # One-word docstrings ("TODO") don't document anything.
    assert len(doc.split()) >= 3, \
        f"{module_name}.{name} docstring is too short to be useful: {doc!r}"


@pytest.mark.parametrize("module_name", _DOCTESTED_MODULES)
def test_api_modules_carry_executable_examples(module_name):
    """The API/bench layers must show usage, not just describe it."""
    module = importlib.import_module(module_name)
    finder = doctest.DocTestFinder(exclude_empty=True)
    examples = [test for test in finder.find(module)
                if test.examples and test.name.startswith(module_name)]
    assert examples, f"{module_name} has no doctest examples"


def test_public_exports_resolve_and_match_all():
    """``__all__`` must list real attributes only (no stale exports)."""
    for module_name, names in _PUBLIC_SURFACES:
        module = importlib.import_module(module_name)
        missing = [name for name in names if not hasattr(module, name)]
        assert not missing, f"{module_name}.__all__ names {missing} " \
                            f"which do not exist"
