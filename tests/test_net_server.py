"""Behaviours of the asyncio TCP daemon that only show up with real
concurrent connections: id scoping, cross-client coalescing, quotas,
mid-job disconnects and the graceful drain."""

import asyncio
import time

import pytest

from repro.api import Session
from repro.net import ClientQuota, ServeClient, ServeServer
from repro.net.load import run_load_test

SPEC = {"job": "synthesize", "circuit": "fig1", "k": 1}


def make_session(tmp_path, **kwargs):
    kwargs.setdefault("time_limit", 60.0)
    kwargs.setdefault("cache_dir", str(tmp_path / "net-cache"))
    return Session(**kwargs)


def slow_down(session, seconds):
    """Wrap ``session.run`` so every job takes at least ``seconds``."""
    real_run = session.run

    def slow_run(job, progress=None):
        time.sleep(seconds)
        return real_run(job, progress=progress)

    session.run = slow_run


async def start_server(session, **kwargs):
    kwargs.setdefault("progress", False)
    server = ServeServer(session, port=0, **kwargs)
    host, port = await server.start()
    return server, host, port


async def finish(server):
    if not server.draining:
        await server.shutdown()
    await server.serve_until_shutdown()


def test_duplicate_ids_across_connections_stay_isolated_and_coalesce(
        tmp_path):
    async def scenario(session):
        server, host, port = await start_server(session, concurrency=4)
        try:
            async with await ServeClient.connect(host, port) as one, \
                    await ServeClient.connect(host, port) as two:
                before = session.scheduler_stats()
                doc_one, doc_two = await asyncio.gather(
                    one.request(SPEC, request_id=1),
                    two.request(SPEC, request_id=1))
                delta = {key: value - before[key]
                         for key, value in session.scheduler_stats().items()}
            # both clients used id=1 and each got exactly its own answer
            for doc in (doc_one, doc_two):
                assert doc["type"] == "result"
                assert doc["id"] == 1
                assert doc["envelope"]["status"] == "ok"
            assert doc_one["envelope"]["payload"] == doc_two["envelope"]["payload"]
            # ...while the scheduler solved the shared work only once
            assert delta["submitted"] > delta["executed"]
        finally:
            await finish(server)

    with make_session(tmp_path) as session:
        asyncio.run(scenario(session))


def test_quota_rejects_excess_in_flight_jobs_with_a_structured_error(
        tmp_path):
    async def scenario(session):
        slow_down(session, 0.4)
        server, host, port = await start_server(
            session, concurrency=4, quota=ClientQuota(max_jobs=2))
        try:
            async with await ServeClient.connect(host, port) as client:
                first = await client.submit(SPEC)
                second = await client.submit(SPEC)
                rejected = await client.request(SPEC)
                assert rejected["type"] == "error"
                assert rejected["error"]["type"] == "QuotaExceeded"
                assert "max_jobs=2" in rejected["error"]["message"]
                # the two admitted jobs still complete normally
                for pending in (first, second):
                    doc = await pending.result()
                    assert doc["envelope"]["status"] == "ok"
            assert server.server_stats()["jobs_rejected"] == 1
        finally:
            await finish(server)

    with make_session(tmp_path) as session:
        asyncio.run(scenario(session))


def test_quota_caps_and_pins_the_job_time_limit(tmp_path):
    async def scenario(session):
        seen = []
        real_run = session.run

        def capture_run(job, progress=None):
            seen.append(job)
            return real_run(job, progress=progress)

        session.run = capture_run
        server, host, port = await start_server(
            session, quota=ClientQuota(max_jobs=4, max_time_limit=5.0))
        try:
            async with await ServeClient.connect(host, port) as client:
                ok = await client.request(SPEC)  # no time_limit: pinned
                over = await client.request({**SPEC, "time_limit": 99.0})
            assert ok["envelope"]["status"] == "ok"
            assert seen[0].time_limit == 5.0
            assert over["type"] == "error"
            assert over["error"]["type"] == "QuotaExceeded"
            assert "99" in over["error"]["message"]
        finally:
            await finish(server)

    with make_session(tmp_path) as session:
        asyncio.run(scenario(session))


def test_client_disconnect_mid_job_leaves_the_daemon_serving(tmp_path):
    async def scenario(session):
        slow_down(session, 0.3)
        server, host, port = await start_server(session, concurrency=2)
        try:
            rude = await ServeClient.connect(host, port)
            await rude.submit(SPEC)
            await rude.close()  # vanish with the job still running
            async with await ServeClient.connect(host, port) as polite:
                pong = await polite.control("ping")
                assert pong["ok"] is True
                doc = await polite.request(SPEC)
                assert doc["envelope"]["status"] == "ok"
                assert server.server_stats()["connections_open"] == 1
        finally:
            await finish(server)

    with make_session(tmp_path) as session:
        asyncio.run(scenario(session))


def test_graceful_drain_answers_in_flight_jobs_before_closing(tmp_path):
    async def scenario(session):
        slow_down(session, 0.3)
        server, host, port = await start_server(session, concurrency=2,
                                                drain_seconds=30.0)
        worker = await ServeClient.connect(host, port)
        pending = await worker.submit(SPEC)
        async with await ServeClient.connect(host, port) as boss:
            ack = await boss.control("shutdown")
            assert ack["ok"] is True
        outcome = await pending.result()
        assert outcome["type"] == "result"
        assert outcome["envelope"]["status"] == "ok"
        await worker.wait_closed()
        terminal = [doc for doc in worker.broadcasts
                    if doc.get("event") == "server_shutdown"]
        assert terminal and terminal[0]["drained"] is True
        await worker.close()
        await server.serve_until_shutdown()
        assert server.draining

    with make_session(tmp_path) as session:
        asyncio.run(scenario(session))


def test_drain_deadline_answers_stragglers_with_server_shutdown(tmp_path):
    async def scenario(session):
        slow_down(session, 0.6)
        server, host, port = await start_server(session, concurrency=2,
                                                drain_seconds=0.05)
        worker = await ServeClient.connect(host, port)
        pending = await worker.submit(SPEC)
        await asyncio.sleep(0.1)  # let the job reach the executor
        async with await ServeClient.connect(host, port) as boss:
            await boss.control("shutdown")
        outcome = await pending.result()
        assert outcome["type"] == "error"
        assert outcome["error"]["type"] == "ServerShutdown"
        await worker.wait_closed()
        terminal = [doc for doc in worker.broadcasts
                    if doc.get("event") == "server_shutdown"]
        assert terminal and terminal[0]["drained"] is False
        await worker.close()
        await server.serve_until_shutdown()
        # let the straggler thread finish before the loop closes, so its
        # final (dropped) emit has a live loop to be ignored by
        await asyncio.sleep(0.7)

    with make_session(tmp_path) as session:
        asyncio.run(scenario(session))


def test_load_harness_answers_every_request_and_proves_dedup(tmp_path):
    with make_session(tmp_path) as session:
        report = run_load_test(session, clients=3, requests_per_client=2)
    assert report["requests"] == 6
    assert report["answered"] == 6
    assert report["ok"] == 6
    assert report["dropped"] == 0
    assert report["errors"] == 0
    assert report["dedup_ratio"] is None or report["dedup_ratio"] > 1.0
    assert report["drain"]["acknowledged"] is True
    assert report["drain"]["probe_answered"] is True
    assert report["latency"]["p50_ms"] is not None


def test_load_harness_rejects_degenerate_parameters(tmp_path):
    with make_session(tmp_path) as session:
        with pytest.raises(ValueError, match="must be >= 1"):
            run_load_test(session, clients=0)
        with pytest.raises(ValueError, match="spec_pool"):
            run_load_test(session, spec_pool=[])
