"""Tests of the HLS front end (``repro.hls.frontend.elaborate``)."""

from __future__ import annotations

import pytest

from repro.circuits import fig1
from repro.dfg import DataFlowGraph, DFGError
from repro.hls import elaborate


def test_elaborate_behavioral_matches_circuit_builder(fig1_behavioral, fig1_graph):
    result = elaborate(fig1_behavioral, resource_limits=fig1.RESOURCE_LIMITS)
    assert result.scheduled_here and result.bound_here
    assert result.graph.is_scheduled and result.graph.is_module_bound
    # the front end reproduces exactly what the circuit module builds
    from repro.dfg import textio
    assert textio.to_dict(result.graph) == textio.to_dict(fig1_graph)


def test_elaborate_is_passthrough_on_prepared_graph(fig1_graph):
    result = elaborate(fig1_graph)
    assert not result.scheduled_here
    assert not result.bound_here
    assert result.graph is fig1_graph


def test_elaborate_binds_scheduled_but_unbound_graph(fig1_behavioral):
    from repro.hls import list_schedule

    scheduled = list_schedule(fig1_behavioral, fig1.RESOURCE_LIMITS).apply(fig1_behavioral)
    result = elaborate(scheduled)
    assert not result.scheduled_here
    assert result.bound_here
    assert result.graph.is_module_bound


def test_elaborate_always_reports_register_binding(fig1_graph):
    result = elaborate(fig1_graph)
    assert result.register_binding is not None
    assert result.register_binding.register_count == 3  # Fig. 1(b)
    summary = result.summary()
    assert summary["left_edge_registers"] == 3
    assert summary["modules"] == 2
    assert summary["circuit"] == "fig1"


def test_elaborate_rejects_empty_graph():
    with pytest.raises(DFGError):
        elaborate(DataFlowGraph("empty"))


def test_elaborate_honours_resource_limits(fig1_behavioral):
    wide = elaborate(fig1_behavioral, resource_limits={"alu": 2, "mult": 2})
    narrow = elaborate(fig1_behavioral, resource_limits={"alu": 1, "mult": 1})
    assert len(wide.graph.control_steps) <= len(narrow.graph.control_steps)
