#!/usr/bin/env python3
"""Quickstart: synthesize a BIST data path for the paper's Fig. 1 example.

This walks the complete ADVBIST flow on the small running example:

1. obtain the scheduled, module-bound DFG,
2. synthesize the optimal non-BIST reference data path (the overhead baseline),
3. synthesize the optimal BIST data path for k = 1 and k = 2 test sessions,
4. print the resulting register configuration, test plan and area overhead.

Run with::

    python examples/quickstart.py
"""

from repro import (
    get_circuit,
    minimum_register_count,
    render_table3,
    synthesize_bist,
    synthesize_reference,
)


def main() -> None:
    graph = get_circuit("fig1")
    print(f"Circuit: {graph.name}")
    print(f"  operations    : {len(graph.operation_ids)}")
    print(f"  variables     : {len(graph.variable_ids)}")
    print(f"  control steps : {len(graph.control_steps)}")
    print(f"  modules       : {graph.module_ids}")
    print(f"  min. registers: {minimum_register_count(graph)}")
    print()

    reference = synthesize_reference(graph)
    reference_area = reference.area().total
    print(f"Reference (non-BIST) data path: {reference_area} transistors "
          f"(optimal={reference.optimal})")
    print()

    rows = [reference.table3_row()]
    for k in (1, 2):
        design = synthesize_bist(graph, k=k)
        rows.append({**design.table3_row(reference_area), "Method": f"ADVBIST k={k}"})
        print(f"--- ADVBIST, {k}-test session ---")
        print(f"  area            : {design.area().total} transistors")
        print(f"  area overhead   : {design.overhead_vs(reference_area):.1f} %")
        print(f"  register kinds  : "
              f"{ {r: kind.name for r, kind in design.plan.register_kinds(design.datapath).items()} }")
        print(f"  module sessions : {design.plan.module_session}")
        print(f"  SR per module   : {design.plan.sr_of_module}")
        print(f"  TPG per port    : {design.plan.tpg_of_port}")
        print(f"  verified        : {design.verify().ok}")
        print()

    print(render_table3(rows, circuit="fig1 (k = 1 and k = 2)"))


if __name__ == "__main__":
    main()
