#!/usr/bin/env python3
"""Reproduce one block of Table 3: ADVBIST versus ADVAN, RALLOC and BITS.

Runs the reference ILP, the ADVBIST ILP and the three heuristic baselines on
one circuit at its maximal test-session count and prints the comparison table
with register counts, test-register kinds, multiplexer inputs, area and
overhead — the same columns as the paper's Table 3.

::

    python examples/compare_methods.py             # tseng
    python examples/compare_methods.py wavelet6    # any circuit from list_circuits()
"""

import sys

from repro import compare_methods, get_circuit, list_circuits, render_table3

TIME_LIMIT = 120.0


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "tseng"
    if circuit not in list_circuits():
        raise SystemExit(f"unknown circuit {circuit!r}; choose from {list_circuits()}")

    graph = get_circuit(circuit)
    result = compare_methods(graph, time_limit=TIME_LIMIT)

    print(render_table3(result.rows(), circuit=f"{circuit} ({result.k} test sessions)"))
    print()
    overheads = result.overheads()
    winner = result.winner()
    print(f"Lowest area overhead: {winner} ({overheads[winner]:.1f} %)")
    for method, overhead in sorted(overheads.items(), key=lambda item: item[1]):
        marker = " <- optimal ILP" if method == "ADVBIST" else ""
        print(f"  {method:8s} {overhead:6.1f} %{marker}")


if __name__ == "__main__":
    main()
