#!/usr/bin/env python3
"""Make your own circuit self-testable: a biquad IIR section from scratch.

This example shows the full user workflow on a circuit that is *not* part of
the built-in benchmark suite:

1. describe the behaviour with :class:`repro.DFGBuilder` (a direct-form-I
   biquad filter section),
2. schedule it and bind functional modules with the HLS substrate,
3. synthesize the optimal non-BIST reference and the BIST design for every
   k-test session,
4. verify the test plan independently and save the DFG to JSON for reuse.

::

    python examples/custom_filter_bist.py
"""

from pathlib import Path

from repro import (
    AdvBistSynthesizer,
    DFGBuilder,
    bind_modules,
    list_schedule,
    minimum_register_count,
    render_table2,
)
from repro.dfg import textio


def build_biquad():
    """y[n] = b0*x[n] + b1*x[n-1] + b2*x[n-2] - a1*y[n-1] - a2*y[n-2]."""
    builder = DFGBuilder("biquad")
    x0 = builder.input("x0")
    x1 = builder.input("x1")
    x2 = builder.input("x2")
    y1 = builder.input("y1")
    y2 = builder.input("y2")
    b0 = builder.input("b0")
    b1 = builder.input("b1")
    b2 = builder.input("b2")
    a1 = builder.input("a1")
    a2 = builder.input("a2")

    p0 = builder.op("mul", b0, x0, name="b0x0")
    p1 = builder.op("mul", b1, x1, name="b1x1")
    p2 = builder.op("mul", b2, x2, name="b2x2")
    q1 = builder.op("mul", a1, y1, name="a1y1")
    q2 = builder.op("mul", a2, y2, name="a2y2")
    s0 = builder.op("add", p0, p1, name="s0")
    s1 = builder.op("add", s0, p2, name="s1")
    s2 = builder.op("sub", s1, q1, name="s2")
    y = builder.op("sub", s2, q2, name="y")
    builder.output(y)
    return builder.build()


def main() -> None:
    behavioural = build_biquad()
    print(f"Behavioural DFG: {len(behavioural.operation_ids)} operations, "
          f"{len(behavioural.variable_ids)} variables")

    # Two multipliers and one add/sub ALU, as a designer might budget.
    scheduled = list_schedule(behavioural, {"mult": 2, "alu": 1}).apply(behavioural)
    bound = bind_modules(scheduled).apply(scheduled)
    print(f"Scheduled into {len(bound.control_steps)} control steps, "
          f"{len(bound.module_ids)} modules, "
          f"{minimum_register_count(bound)} registers minimum")

    synthesizer = AdvBistSynthesizer(bound, time_limit=120)
    sweep = synthesizer.sweep()
    print()
    print(render_table2(sweep.table2_rows()))

    best = sweep.best_entry()
    design = best.design
    print()
    print(f"Chosen design: k={best.k}, overhead {best.overhead_percent:.1f} %")
    print("Register configuration:")
    for reg, kind in sorted(design.plan.register_kinds(design.datapath).items()):
        members = design.datapath.register(reg).variables
        print(f"  R{reg}: {kind.name:7s} holds variables {list(members)}")
    print(f"Independent testability check: {design.verify().ok}")

    out_path = Path(__file__).with_name("biquad_scheduled.json")
    textio.save(bound, out_path)
    print(f"Scheduled DFG saved to {out_path.name} (reload with repro.dfg.textio.load)")


if __name__ == "__main__":
    main()
