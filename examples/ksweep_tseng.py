#!/usr/bin/env python3
"""Reproduce one block of Table 2: the area / test-time trade-off of ADVBIST.

The paper's Table 2 reports, for every circuit and every k-test session, the
area overhead of the optimal BIST design and the ILP solve time.  This example
runs that sweep for one circuit (``tseng`` by default) and prints the same
rows; pass another circuit name on the command line to sweep it instead::

    python examples/ksweep_tseng.py            # tseng
    python examples/ksweep_tseng.py paulin     # the diffeq benchmark
"""

import sys

from repro import AdvBistSynthesizer, get_circuit, render_table2

#: Per-solve wall-clock limit in seconds (the paper allowed 24 CPU hours).
TIME_LIMIT = 120.0


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "tseng"
    graph = get_circuit(circuit)
    print(f"Sweeping k = 1 .. {len(graph.module_ids)} on {circuit!r} "
          f"({len(graph.operation_ids)} operations, {len(graph.module_ids)} modules)")

    synthesizer = AdvBistSynthesizer(graph, time_limit=TIME_LIMIT)
    sweep = synthesizer.sweep()

    print()
    print(f"Reference area: {sweep.reference.area().total} transistors")
    print(render_table2(sweep.table2_rows()))
    print()
    best = sweep.best_entry()
    print(f"Best trade-off: k={best.k} with {best.overhead_percent:.1f} % overhead "
          f"({best.design.area().total} transistors).")
    print("Larger k (more test sessions, longer test time) never increases the "
          "optimal area overhead — the Table 2 trend.")


if __name__ == "__main__":
    main()
