"""Table 1 — transistor counts of test registers and multiplexers.

The cost model *is* the table, so this bench renders it, checks the exact
published numbers, and times the (cheap) cost queries the ILP objective makes.
"""

from repro.cost import PAPER_COST_MODEL
from repro.datapath import TestRegisterKind
from repro.reporting import render_table1

from _bench_utils import record, run_once

PAPER_REGISTER_COSTS = {
    TestRegisterKind.NONE: 208,
    TestRegisterKind.TPG: 256,
    TestRegisterKind.SR: 304,
    TestRegisterKind.BILBO: 388,
    TestRegisterKind.CBILBO: 596,
}
PAPER_MUX_COSTS = {2: 80, 3: 176, 4: 208, 5: 300, 6: 320, 7: 350}


def test_table1_cost_model(benchmark):
    def query_full_table():
        registers = {kind: PAPER_COST_MODEL.register_cost(kind) for kind in TestRegisterKind}
        muxes = {n: PAPER_COST_MODEL.mux_cost(n) for n in range(0, 12)}
        return registers, muxes

    registers, muxes = run_once(benchmark, query_full_table)

    for kind, cost in PAPER_REGISTER_COSTS.items():
        assert registers[kind] == cost
    for size, cost in PAPER_MUX_COSTS.items():
        assert muxes[size] == cost
    # weights of the ILP objective derived from the same table
    increments = PAPER_COST_MODEL.incremental_weights()
    assert all(value > 0 for value in increments.values())

    record("Table 1 (cost model)", render_table1())
