"""Table 2 — ADVBIST area overhead and solve time per circuit per k-test session.

For every circuit of the paper's evaluation this bench submits a
:class:`~repro.api.SweepJob` to a :class:`~repro.api.Session` (the full
k-sweep, k = 1 .. number of modules): the reference ILP once, then one
ADVBIST ILP per k, each capped at the configured time limit.  The printed
rows mirror the paper's Table 2 (overhead %, solve time, and whether the
solve hit the limit, which the paper marks with ``*``).

Shape checks performed per circuit (on the envelope payload):

* every k yields a verified BIST design,
* the optimal overhead is non-increasing in k (more sessions never cost area),
* overheads stay in a moderate band (the paper reports 11 % - 46 %).
"""

import pytest

from repro.api import Session, SweepJob

from _bench_utils import PAPER_CIRCUITS, record, run_once
from repro.reporting import render_table2


@pytest.mark.parametrize("circuit", PAPER_CIRCUITS)
def test_table2_sweep(benchmark, circuit, time_limit):
    def sweep():
        with Session(time_limit=time_limit, cache=False) as session:
            return session.run(SweepJob(circuit=circuit))

    envelope = run_once(benchmark, sweep)

    assert envelope.ok
    rows = envelope.payload["rows"]
    assert rows
    assert all(row["verified"] for row in rows)

    overheads = [row["overhead_percent"] for row in rows]
    optimal_flags = [row["optimal"] for row in rows]
    # Monotonicity only holds between proven-optimal points (a time-limited
    # incumbent may be worse than a smaller-k optimum, as in the paper's dct4).
    proven = [oh for oh, opt in zip(overheads, optimal_flags) if opt]
    assert all(b <= a + 1e-9 for a, b in zip(proven, proven[1:]))
    assert all(0.0 <= oh <= 120.0 for oh in overheads)

    marked_rows = [{**row, "hit_limit": "" if row["optimal"] else "*"}
                   for row in rows]
    record(f"Table 2 — {circuit}", render_table2(marked_rows))
