"""Table 2 — ADVBIST area overhead and solve time per circuit per k-test session.

For every circuit of the paper's evaluation this bench runs the full k-sweep
(k = 1 .. number of modules): the reference ILP once, then one ADVBIST ILP per
k, each capped at the configured time limit.  The printed rows mirror the
paper's Table 2 (overhead %, solve time, and whether the solve hit the limit,
which the paper marks with ``*``).

Shape checks performed per circuit:

* every k yields a verified BIST design,
* the optimal overhead is non-increasing in k (more sessions never cost area),
* overheads stay in a moderate band (the paper reports 11 % - 46 %).
"""

import pytest

from repro.circuits import get_circuit
from repro.core import AdvBistSynthesizer

from _bench_utils import PAPER_CIRCUITS, record, run_once
from repro.reporting import render_table2


@pytest.mark.parametrize("circuit", PAPER_CIRCUITS)
def test_table2_sweep(benchmark, circuit, time_limit):
    def sweep():
        graph = get_circuit(circuit)
        synthesizer = AdvBistSynthesizer(graph, time_limit=time_limit)
        return synthesizer.sweep()

    result = run_once(benchmark, sweep)

    rows = result.table2_rows()
    assert len(rows) == len(result.entries)
    for entry in result.entries:
        assert entry.design.verify().ok

    overheads = [entry.overhead_percent for entry in result.entries]
    optimal_flags = [entry.design.optimal for entry in result.entries]
    # Monotonicity only holds between proven-optimal points (a time-limited
    # incumbent may be worse than a smaller-k optimum, as in the paper's dct4).
    proven = [oh for oh, opt in zip(overheads, optimal_flags) if opt]
    assert all(b <= a + 1e-9 for a, b in zip(proven, proven[1:]))
    assert all(0.0 <= oh <= 120.0 for oh in overheads)

    marked_rows = []
    for row, entry in zip(rows, result.entries):
        marked_rows.append({**row, "hit_limit": "" if entry.design.optimal else "*"})
    record(f"Table 2 — {circuit}", render_table2(marked_rows))
