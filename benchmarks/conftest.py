"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The heavy ones
involve exact ILP solves, so:

* each synthesis call is capped by a per-solve wall-clock limit
  (``REPRO_BENCH_TIME_LIMIT`` seconds, default 45 — the paper used a
  24-CPU-hour cap; entries that hit the limit are reported as non-optimal
  exactly like the starred entries of Table 2), and
* every benchmark runs its workload exactly once
  (``benchmark.pedantic(..., rounds=1, iterations=1)``) because the quantity
  of interest is the synthesis *result*, with the measured time as a bonus.

Results are printed to stdout (run pytest with ``-s`` to see them live) and
appended to ``benchmarks/results.txt`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import pytest

from _bench_utils import PAPER_CIRCUITS, TIME_LIMIT


@pytest.fixture(scope="session")
def time_limit() -> float:
    return TIME_LIMIT


@pytest.fixture(scope="session")
def paper_circuits() -> list[str]:
    return list(PAPER_CIRCUITS)
