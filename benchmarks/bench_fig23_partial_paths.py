"""Figures 2 and 3 — SR and TPG assignment choices on the example data path.

Fig. 2 illustrates which registers can serve as signature registers of the two
modules over one or two sub-test sessions; Fig. 3 does the same for the test
pattern generators.  This bench solves the ADVBIST ILP on the Fig. 1 circuit
for k = 1 and k = 2 and reports where the SRs and TPGs land, checking the
structural facts the figures encode:

* an SR of a module is always a register wired from that module (eq. 6),
* a TPG of a port is always a register wired to that port (eq. 9),
* with only three registers, the one-session design is forced into a CBILBO
  while the two-session design avoids it.
"""

from repro.circuits import fig1
from repro.core import AdvBistFormulation
from repro.datapath import TestRegisterKind
from repro.reporting import format_table

from _bench_utils import record, run_once


def test_fig23_sr_and_tpg_assignment(benchmark, time_limit):
    def synthesize():
        graph = fig1.build()
        one = AdvBistFormulation(graph, k=1).solve(time_limit=time_limit)
        two = AdvBistFormulation(graph, k=2).solve(time_limit=time_limit)
        return graph, one, two

    graph, one, two = run_once(benchmark, synthesize)
    rows = []
    for label, result in (("k=1", one), ("k=2", two)):
        design = result.design
        assert design is not None and design.verify().ok
        datapath = design.datapath
        plan = design.plan
        for module, sr in sorted(plan.sr_of_module.items()):
            assert datapath.has_module_to_register_wire(module, sr)
        for (module, port), tpg in sorted(plan.tpg_of_port.items()):
            assert datapath.has_register_to_port_wire(tpg, module, port)
        kinds = plan.kind_counts(datapath)
        rows.append({
            "session": label,
            "SRs": {m: f"R{r}" for m, r in sorted(plan.sr_of_module.items())},
            "TPGs": {f"M{m}.{p}": f"R{r}" for (m, p), r in sorted(plan.tpg_of_port.items())},
            "CBILBOs": kinds[TestRegisterKind.CBILBO],
            "area": design.area().total,
        })

    # The Fig. 2/3 narrative: one session forces a CBILBO here, two do not.
    assert rows[0]["CBILBOs"] >= 1
    assert rows[1]["CBILBOs"] == 0
    record("Figures 2-3 (SR / TPG assignment on the example)",
           format_table(rows, ["session", "SRs", "TPGs", "CBILBOs", "area"]))
