"""Serial vs process-pool sweep wall time (the parallel-session speed-up).

The (circuit, k) evaluation grid is embarrassingly parallel: every ADVBIST
solve is independent of every other.  This bench runs the full k-sweep of
``tseng`` and ``fir6`` twice through the :mod:`repro.api` façade — once on
a serial :class:`~repro.api.Session` and once on a session with a
two-worker persistent process pool — and records both wall times plus the
speed-up.

Shape checks performed per circuit:

* the parallel sweep reproduces the serial Table 2 rows exactly
  (modulo the per-solve timing column), and
* both paths yield verified designs for every k.

The design cache is disabled throughout so both paths do the same work.
"""

import time

import pytest

from repro.api import Session, SweepJob

from _bench_utils import record, run_once
from repro.reporting import format_table

#: Two mid-sized circuits: large enough for the pool to amortise its start-up,
#: small enough to keep the bench affordable.
CIRCUITS = ["tseng", "fir6"]

JOBS = 2

_TIMING_KEYS = ("solve_seconds", "wall_s")


def _comparable_rows(envelope):
    return [{key: value for key, value in row.items() if key not in _TIMING_KEYS}
            for row in envelope.payload["rows"]]


@pytest.mark.parametrize("circuit", CIRCUITS)
def test_parallel_sweep_speedup(benchmark, circuit, time_limit):
    job = SweepJob(circuit=circuit)

    def run_both():
        with Session(time_limit=time_limit, jobs=1, cache=False) as serial:
            start = time.perf_counter()
            serial_envelope = serial.run(job)
            serial_seconds = time.perf_counter() - start

        with Session(time_limit=time_limit, jobs=JOBS, cache=False) as parallel:
            start = time.perf_counter()
            parallel_envelope = parallel.run(job)
            parallel_seconds = time.perf_counter() - start
        return serial_envelope, serial_seconds, parallel_envelope, parallel_seconds

    serial_envelope, serial_seconds, parallel_envelope, parallel_seconds = \
        run_once(benchmark, run_both)

    assert serial_envelope.ok and parallel_envelope.ok
    assert _comparable_rows(serial_envelope) == _comparable_rows(parallel_envelope)
    for envelope in (serial_envelope, parallel_envelope):
        assert all(row["verified"] for row in envelope.payload["rows"])

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    rows = [{
        "circuit": circuit,
        "tasks": len(serial_envelope.reports),
        "serial_s": round(serial_seconds, 2),
        f"jobs={JOBS}_s": round(parallel_seconds, 2),
        "speedup": f"{speedup:.2f}x",
    }]
    record(
        f"Parallel sweep — {circuit}",
        format_table(rows, title=f"Session serial vs {JOBS}-process sweep"),
    )
