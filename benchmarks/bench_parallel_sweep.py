"""Serial vs process-pool sweep wall time: a thin client of the
``sweep-scaling`` suite in :mod:`repro.bench`.

The (circuit, k) evaluation grid is embarrassingly parallel: every ADVBIST
solve is independent of every other.  The suite runs the full k-sweep of
``tseng`` and ``fir6`` twice through the :mod:`repro.api` façade — once on
a serial session ("serial" scenario) and once on a two-worker persistent
process pool ("jobs2") — with the design cache disabled so both paths do
identical work.  The suite's built-in parity guard already asserts both
paths produce the same proven objectives; this bench adds the speed-up
table to ``benchmarks/results.txt``.
"""

import pytest

from _bench_utils import record, run_once
from repro.bench import run_suite
from repro.reporting import format_table


def test_parallel_sweep_speedup(benchmark, time_limit):
    suite_report = run_once(
        benchmark,
        lambda: run_suite("sweep-scaling", time_limit=time_limit))

    assert suite_report["parity_ok"], suite_report["parity_mismatches"]
    scenarios = suite_report["scenarios"]
    serial, parallel = scenarios["serial"], scenarios["jobs2"]

    rows = []
    for label, serial_seconds in serial["per_unit_seconds"].items():
        parallel_seconds = parallel["per_unit_seconds"][label]
        speedup = (serial_seconds / parallel_seconds
                   if parallel_seconds > 0 else float("inf"))
        rows.append({
            "unit": label,
            "serial_s": round(serial_seconds, 2),
            "jobs=2_s": round(parallel_seconds, 2),
            "speedup": f"{speedup:.2f}x",
        })
    rows.append({
        "unit": "TOTAL",
        "serial_s": serial["wall_seconds"],
        "jobs=2_s": parallel["wall_seconds"],
        "speedup": f"{suite_report['speedups']['jobs2']:.2f}x",
    })
    record(
        "Parallel sweep (repro.bench sweep-scaling)",
        format_table(rows, ["unit", "serial_s", "jobs=2_s", "speedup"],
                     title="Session serial vs 2-process sweep"),
    )


if __name__ == "__main__":  # allow running without pytest-benchmark
    raise SystemExit(pytest.main([__file__, "-s"]))
