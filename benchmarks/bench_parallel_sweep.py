"""Serial vs process-pool sweep wall time (the SweepEngine speed-up).

The (circuit, k) evaluation grid is embarrassingly parallel: every ADVBIST
solve is independent of every other.  This bench runs the full k-sweep of
``tseng`` and ``fir6`` twice through :class:`repro.core.SweepEngine` — once
with the serial executor and once over a two-worker process pool — and
records both wall times plus the speed-up.

Shape checks performed per circuit:

* the parallel sweep reproduces the serial Table 2 rows exactly
  (modulo the per-solve timing column), and
* both paths yield verified designs for every k.

The design cache is disabled throughout so both paths do the same work.
"""

import time

import pytest

from repro.circuits import get_circuit
from repro.core import SweepEngine

from _bench_utils import record, run_once
from repro.reporting import format_table

#: Two mid-sized circuits: large enough for the pool to amortise its start-up,
#: small enough to keep the bench affordable.
CIRCUITS = ["tseng", "fir6"]

JOBS = 2

_TIMING_KEYS = ("solve_seconds", "wall_s")


def _comparable_rows(result):
    return [{key: value for key, value in row.items() if key not in _TIMING_KEYS}
            for row in result.table2_rows()]


@pytest.mark.parametrize("circuit", CIRCUITS)
def test_parallel_sweep_speedup(benchmark, circuit, time_limit):
    graph = get_circuit(circuit)

    def run_both():
        serial_engine = SweepEngine(time_limit=time_limit, jobs=1, cache=None)
        start = time.perf_counter()
        serial_result = serial_engine.sweep(graph)
        serial_seconds = time.perf_counter() - start

        parallel_engine = SweepEngine(time_limit=time_limit, jobs=JOBS, cache=None)
        start = time.perf_counter()
        parallel_result = parallel_engine.sweep(graph)
        parallel_seconds = time.perf_counter() - start
        return serial_result, serial_seconds, parallel_result, parallel_seconds

    serial_result, serial_seconds, parallel_result, parallel_seconds = \
        run_once(benchmark, run_both)

    assert _comparable_rows(serial_result) == _comparable_rows(parallel_result)
    for result in (serial_result, parallel_result):
        for entry in result.entries:
            assert entry.design.verify().ok

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    rows = [{
        "circuit": circuit,
        "tasks": len(serial_result.reports),
        "serial_s": round(serial_seconds, 2),
        f"jobs={JOBS}_s": round(parallel_seconds, 2),
        "speedup": f"{speedup:.2f}x",
    }]
    record(
        f"Parallel sweep — {circuit}",
        format_table(rows, title=f"SweepEngine serial vs {JOBS}-process sweep"),
    )
