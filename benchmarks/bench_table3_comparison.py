"""Table 3 — ADVBIST versus ADVAN, RALLOC and BITS at the maximal k.

One bench per circuit: the reference ILP, the ADVBIST ILP at the maximal
number of test sessions, and the three heuristic baselines.  The printed
block has the same columns as the paper's Table 3 (R, T, S, B, C, M, Area,
OH%).

Shape checks (the claims the paper draws from its Table 3):

* every method produces a verified BIST design,
* ADVBIST's area overhead is the lowest (or tied) on every circuit,
* ADVBIST and ADVAN never add registers beyond the reference count.
"""

import pytest

from repro.circuits import get_circuit
from repro.reporting import compare_methods, render_table3

from _bench_utils import PAPER_CIRCUITS, record, run_once


@pytest.mark.parametrize("circuit", PAPER_CIRCUITS)
def test_table3_comparison(benchmark, circuit, time_limit):
    def compare():
        graph = get_circuit(circuit)
        return compare_methods(graph, time_limit=time_limit)

    result = run_once(benchmark, compare)

    for design in result.designs.values():
        assert design.verify().ok

    overheads = result.overheads()
    assert overheads["ADVBIST"] <= min(overheads.values()) + 1e-9

    reference_registers = result.reference.area().register_count
    assert result.designs["ADVBIST"].area().register_count == reference_registers
    assert result.designs["ADVAN"].area().register_count == reference_registers

    record(f"Table 3 — {circuit} ({result.k} test sessions)",
           render_table3(result.rows(), circuit=circuit))
