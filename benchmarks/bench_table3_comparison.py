"""Table 3 — ADVBIST versus ADVAN, RALLOC and BITS at the maximal k.

One bench per circuit: a :class:`~repro.api.CompareJob` submitted to a
:class:`~repro.api.Session` runs the reference ILP, the ADVBIST ILP at the
maximal number of test sessions, and the three heuristic baselines.  The
printed block has the same columns as the paper's Table 3 (R, T, S, B, C,
M, Area, OH%).

Shape checks (the claims the paper draws from its Table 3, read off the
envelope payload):

* every method produces a verified BIST design,
* ADVBIST's area overhead is the lowest (or tied) on every circuit,
* ADVBIST and ADVAN never add registers beyond the reference count.
"""

import pytest

from repro.api import CompareJob, Session
from repro.reporting import render_table3

from _bench_utils import PAPER_CIRCUITS, record, run_once


@pytest.mark.parametrize("circuit", PAPER_CIRCUITS)
def test_table3_comparison(benchmark, circuit, time_limit):
    def compare():
        with Session(time_limit=time_limit, cache=False) as session:
            return session.run(CompareJob(circuit=circuit))

    envelope = run_once(benchmark, compare)

    assert envelope.ok
    payload = envelope.payload
    assert all(payload["verified"].values())

    overheads = payload["overheads"]
    assert overheads["ADVBIST"] <= min(overheads.values()) + 1e-9
    assert payload["winner"] == "ADVBIST"

    # Register counts are the R column of the Table 3 rows; the reference
    # row comes first.
    registers = {row["Method"]: row["R"] for row in payload["table3"]}
    assert registers["ADVBIST"] == registers["Ref."]
    assert registers["ADVAN"] == registers["Ref."]

    record(f"Table 3 — {circuit} ({payload['k']} test sessions)",
           render_table3(payload["table3"], circuit=circuit))
