"""Performance-regression bench: the Table 2/3 grids, accelerated vs not.

Times the paper's evaluation sweeps under four configurations —

* ``cold_baseline``   — empty cache, no presolve, no warm starts;
* ``cold_accel``      — empty cache, presolve + warm starts (the
  :mod:`repro.accel` pipeline on the default backend);
* ``cold_portfolio``  — empty cache, presolve + warm starts on the racing
  ``portfolio`` backend;
* ``warm_cache``      — the accelerated run repeated on its own populated
  design cache (every solve is a hit);

— and writes the measurements to ``BENCH_regress.json`` at the repository
root, seeding the perf trajectory.  Every scenario must produce *identical*
objectives; the script exits non-zero (and records ``parity_ok: false``)
if any acceleration layer changed a result.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_regress.py                   # full Table 2/3 set
    PYTHONPATH=src python benchmarks/bench_regress.py --circuits fig1   # CI smoke

Unlike the table benches (which pretty-print the paper's numbers), this
script exists to be diffed over time: keep the JSON committed so the next
optimisation PR has a baseline to beat.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import CompareJob, Session, SweepJob  # noqa: E402

#: The seven built-in circuits (fig1 plus the Table 2/3 set).
DEFAULT_CIRCUITS = ["fig1", "tseng", "paulin", "fir6", "iir3", "dct4", "wavelet6"]

SCENARIOS = ("cold_baseline", "cold_accel", "cold_portfolio", "warm_cache")


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--circuits", nargs="+", default=DEFAULT_CIRCUITS,
                        help="circuits to sweep (default: the full built-in set)")
    parser.add_argument("--max-k", type=int, default=None,
                        help="cap each Table 2 sweep at this many test sessions")
    parser.add_argument("--time-limit", type=float, default=120.0,
                        help="per-solve wall clock limit in seconds")
    parser.add_argument("--skip-portfolio", action="store_true",
                        help="omit the portfolio-backend scenario")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_regress.json"),
                        help="output JSON path (default: BENCH_regress.json "
                             "at the repository root)")
    return parser.parse_args(argv)


def _jobs_for(circuits, max_k):
    for circuit in circuits:
        yield f"sweep:{circuit}", SweepJob(circuit=circuit, max_k=max_k)
    for circuit in circuits:
        yield f"compare:{circuit}", CompareJob(circuit=circuit)


def _fingerprint(label: str, envelope) -> dict:
    """Parity fingerprint of one envelope: ``key -> (area, proven)``.

    ``proven`` marks entries whose area is configuration-independent: a
    proven optimum or a deterministic heuristic baseline.  Entries where a
    solver stopped on its time limit carry whatever incumbent it reached —
    those may legitimately differ between configurations (the accelerated
    path often finds a *better* one) and are excluded from the parity
    assertion, but still recorded for the human reading the JSON.
    """
    if not envelope.ok:
        raise RuntimeError(f"{label} failed: {envelope.error}")
    payload = envelope.payload
    entries: dict[str, tuple[float, bool]] = {}
    if label.startswith("sweep:"):
        entries[f"{label}:reference"] = (payload["reference_area"],
                                         bool(payload["reference_optimal"]))
        for row in payload["rows"]:
            entries[f"{label}:k={row['k']}"] = (row["area"], bool(row["optimal"]))
        return entries
    optimal = payload["optimal"]
    for method, row in zip(["reference"] + list(payload["overheads"]),
                           payload["table3"]):
        if method == "reference":
            proven = bool(payload["reference_optimal"])
        elif method == "ADVBIST":
            proven = bool(optimal.get(method, False))
        else:
            # The heuristic baselines are deterministic (their designs carry
            # optimal=False, but the *area* is configuration-independent).
            proven = True
        entries[f"{label}:{method}"] = (row["Area"], proven)
    return entries


def run_scenario(name: str, circuits, max_k, time_limit, cache_dir,
                 *, presolve: bool, warm_start: bool, backend: str) -> dict:
    """Execute the full job grid under one configuration and time it."""
    per_job: dict[str, float] = {}
    fingerprint: dict[str, tuple[float, bool]] = {}
    cached_solves = 0
    total_solves = 0
    started = time.perf_counter()
    with Session(backend=backend, time_limit=time_limit, cache_dir=cache_dir,
                 presolve=presolve, warm_start=warm_start) as session:
        for label, job in _jobs_for(circuits, max_k):
            job_started = time.perf_counter()
            envelope = session.run(job)
            per_job[label] = round(time.perf_counter() - job_started, 3)
            fingerprint.update(_fingerprint(label, envelope))
            cached_solves += sum(1 for r in envelope.reports if r.get("cached"))
            total_solves += len(envelope.reports)
    return {
        "scenario": name,
        "backend": backend,
        "presolve": presolve,
        "warm_start": warm_start,
        "wall_seconds": round(time.perf_counter() - started, 3),
        "per_job_seconds": per_job,
        "cached_solves": cached_solves,
        "total_solves": total_solves,
        "objectives": {key: area for key, (area, _) in fingerprint.items()},
        "proven": {key: proven for key, (_, proven) in fingerprint.items()},
    }


def main(argv=None) -> int:
    args = parse_args(argv)
    results: dict[str, dict] = {}

    with tempfile.TemporaryDirectory(prefix="bench-regress-") as tmp:
        tmp = Path(tmp)
        # Warm the interpreter/scipy before any timed run so the first
        # scenario does not pay one-off import and JIT-ish costs.
        run_scenario("warmup", ["fig1"], 1, args.time_limit,
                     str(tmp / "warmup"), presolve=False, warm_start=False,
                     backend="auto")

        results["cold_baseline"] = run_scenario(
            "cold_baseline", args.circuits, args.max_k, args.time_limit,
            str(tmp / "baseline"), presolve=False, warm_start=False,
            backend="auto")
        results["cold_accel"] = run_scenario(
            "cold_accel", args.circuits, args.max_k, args.time_limit,
            str(tmp / "accel"), presolve=True, warm_start=True,
            backend="auto")
        if not args.skip_portfolio:
            results["cold_portfolio"] = run_scenario(
                "cold_portfolio", args.circuits, args.max_k, args.time_limit,
                str(tmp / "portfolio"), presolve=True, warm_start=True,
                backend="portfolio")
        # Re-running the accelerated configuration on its own cache measures
        # the warm-cache path every repeated front-end request takes.
        results["warm_cache"] = run_scenario(
            "warm_cache", args.circuits, args.max_k, args.time_limit,
            str(tmp / "accel"), presolve=True, warm_start=True,
            backend="auto")

    baseline = results["cold_baseline"]
    mismatches: list[dict] = []
    unproven: list[str] = sorted(
        key for scenario in results.values()
        for key, proven in scenario["proven"].items() if not proven
    )
    for scenario in results.values():
        for key, area in scenario["objectives"].items():
            if not (scenario["proven"][key] and baseline["proven"].get(key)):
                continue
            if area != baseline["objectives"][key]:
                mismatches.append({
                    "entry": key,
                    "scenario": scenario["scenario"],
                    "baseline": baseline["objectives"][key],
                    "got": area,
                })
    parity_ok = not mismatches
    baseline_wall = results["cold_baseline"]["wall_seconds"]
    accel_wall = results["cold_accel"]["wall_seconds"]
    report = {
        "schema": 1,
        "bench": "bench_regress",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "config": {
            "circuits": args.circuits,
            "max_k": args.max_k,
            "time_limit": args.time_limit,
        },
        "parity_ok": parity_ok,
        "parity_mismatches": mismatches,
        "unproven_entries": sorted(set(unproven)),
        "accel_speedup": round(baseline_wall / accel_wall, 3) if accel_wall else None,
        "accel_saves_seconds": round(baseline_wall - accel_wall, 3),
        "warm_cache_speedup": (round(baseline_wall
                                     / results["warm_cache"]["wall_seconds"], 3)
                               if results["warm_cache"]["wall_seconds"] else None),
        "scenarios": results,
    }

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n",
                   encoding="utf-8")
    print(f"wrote {out}")
    print(f"cold baseline: {baseline_wall:.2f}s   "
          f"cold accel: {accel_wall:.2f}s   "
          f"speedup: {report['accel_speedup']}x   "
          f"warm cache: {results['warm_cache']['wall_seconds']:.2f}s")
    if not parity_ok:
        print("PARITY FAILURE: an acceleration layer changed an objective",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
