"""Performance-regression bench: a thin client of :mod:`repro.bench`.

Runs the ``table2`` + ``table3`` suites (the paper's evaluation grids
under the cold/accelerated/portfolio/warm-cache scenario matrix) through
the benchmark subsystem and writes the schema-2 report to
``BENCH_regress.json`` at the repository root, extending the perf
trajectory.  Objective parity across scenarios is asserted by the runner;
the script exits non-zero when any acceleration layer changed a proven
result.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_regress.py                   # full grids
    PYTHONPATH=src python benchmarks/bench_regress.py --circuits fig1   # smoke
    PYTHONPATH=src python benchmarks/bench_regress.py --compare BENCH_regress.json

Equivalent CLI (this script only adds the historical defaults)::

    python -m repro bench run --suite table2 --suite table3 \
        --out BENCH_regress.json --compare <prior>

Keep the JSON committed so the next optimisation PR has a baseline to
beat — ``repro bench compare`` diffs any two reports, and legacy schema-1
files are migrated on read.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.compare import DEFAULT_THRESHOLD  # noqa: E402
from repro.cli import main as repro_main  # noqa: E402

SUITES = ("table2", "table3")


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--circuits", nargs="+", default=None,
                        help="circuits to sweep (default: the full built-in set)")
    parser.add_argument("--max-k", type=int, default=None,
                        help="cap each Table 2 sweep at this many test sessions")
    parser.add_argument("--time-limit", type=float, default=120.0,
                        help="per-solve wall clock limit in seconds")
    parser.add_argument("--skip-portfolio", action="store_true",
                        help="omit the portfolio-backend scenario")
    parser.add_argument("--compare", nargs="+", default=None,
                        metavar="PRIOR.json",
                        help="prior reports to gate the fresh run against")
    parser.add_argument("--threshold", default=f"{DEFAULT_THRESHOLD}x",
                        help="slowdown ratio that counts as a regression")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_regress.json"),
                        help="output JSON path (default: BENCH_regress.json "
                             "at the repository root)")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    cli: list[str] = ["bench", "run"]
    for suite in SUITES:
        cli += ["--suite", suite]
    cli += ["--time-limit", str(args.time_limit), "--out", args.out]
    if args.circuits:
        cli += ["--circuits", *args.circuits]
    if args.max_k is not None:
        cli += ["--max-k", str(args.max_k)]
    if args.skip_portfolio:
        # table3 has no portfolio scenario, so list every other one.
        cli += ["--scenarios", "cold_baseline", "cold_accel", "warm_cache"]
    if args.compare:
        cli += ["--compare", *args.compare, "--threshold", str(args.threshold)]
    return repro_main(cli)


if __name__ == "__main__":
    raise SystemExit(main())
