"""Ablation — solver backends and the section 3.5 symmetry reduction.

Two solver-side studies on the small instances:

* HiGHS (the CPLEX stand-in) against the package's own branch-and-bound
  backend on the Fig. 1 ADVBIST model: both must reach the same optimum,
  with HiGHS typically much faster.
* The symmetry reduction of section 3.5 (pinning a maximal clique of
  incompatible variables): same optimum with and without, fewer explored
  nodes / less time with it.
"""

from repro.circuits import fig1, tseng
from repro.core import AdvBistFormulation, FormulationOptions, ReferenceFormulation
from repro.reporting import format_table

from _bench_utils import record, run_once


def test_ablation_solver_backends(benchmark, time_limit):
    def run():
        graph = fig1.build()
        highs = AdvBistFormulation(graph, k=2).solve(backend="scipy",
                                                     time_limit=time_limit)
        bnb = AdvBistFormulation(graph, k=2).solve(backend="bnb",
                                                   time_limit=max(time_limit, 120))
        return highs, bnb

    highs, bnb = run_once(benchmark, run)
    assert highs.solution.proven_optimal
    assert bnb.solution.status.has_solution
    assert abs(highs.solution.objective - bnb.solution.objective) < 1e-6

    rows = [{
        "backend": "scipy / HiGHS",
        "objective": highs.solution.objective,
        "seconds": round(highs.solution.solve_seconds, 3),
        "nodes": highs.solution.nodes,
    }, {
        "backend": "own branch & bound",
        "objective": bnb.solution.objective,
        "seconds": round(bnb.solution.solve_seconds, 3),
        "nodes": bnb.solution.nodes,
    }]
    record("Ablation: solver backends on fig1 (k=2)",
           format_table(rows, ["backend", "objective", "seconds", "nodes"]))


def test_ablation_symmetry_reduction(benchmark, time_limit):
    def run():
        graph = tseng.build()
        with_reduction = ReferenceFormulation(graph).solve(time_limit=time_limit)
        without_reduction = ReferenceFormulation(
            graph, options=FormulationOptions(symmetry_reduction=False)
        ).solve(time_limit=time_limit)
        return with_reduction, without_reduction

    with_reduction, without_reduction = run_once(benchmark, run)
    assert with_reduction.solution.proven_optimal
    assert without_reduction.solution.proven_optimal
    assert abs(with_reduction.solution.objective
               - without_reduction.solution.objective) < 1e-6

    rows = [{
        "variant": "with clique pinning (section 3.5)",
        "objective": with_reduction.solution.objective,
        "seconds": round(with_reduction.solution.solve_seconds, 3),
        "nodes": with_reduction.solution.nodes,
    }, {
        "variant": "without symmetry reduction",
        "objective": without_reduction.solution.objective,
        "seconds": round(without_reduction.solution.solve_seconds, 3),
        "nodes": without_reduction.solution.nodes,
    }]
    record("Ablation: symmetry reduction on the tseng reference ILP",
           format_table(rows, ["variant", "objective", "seconds", "nodes"]))
