""""Table 4" — the area penalty of adding a register.

The paper's text points at a Table 4 ("the addition of registers incurs large
area overhead as can be seen in Table 4") that is not printed in the
proceedings version.  This bench reproduces the study it refers to: for every
circuit, the optimal reference data path is re-synthesized with one extra
register, and the resulting area penalty is reported.  RALLOC and BITS pay at
least this penalty on the circuits where they need an extra register.
"""

import pytest

from repro.circuits import get_circuit
from repro.cost import PAPER_COST_MODEL
from repro.reporting import extra_register_penalty, format_table

from _bench_utils import PAPER_CIRCUITS, record, run_once


@pytest.mark.parametrize("circuit", PAPER_CIRCUITS)
def test_table4_extra_register_penalty(benchmark, circuit, time_limit):
    def study():
        graph = get_circuit(circuit)
        return extra_register_penalty(graph, time_limit=time_limit)

    result = run_once(benchmark, study)

    # An added register costs its own transistors minus whatever mux area it
    # can save; it must never be free and never cost more than a CBILBO swap.
    assert result["penalty"] > 0
    assert result["penalty"] >= PAPER_COST_MODEL.w_reg - PAPER_COST_MODEL.mux_cost(7)
    assert result["enlarged_area"] == result["base_area"] + result["penalty"]

    record(f"Table 4 (extra-register study) — {circuit}",
           format_table([result],
                        ["circuit", "base_registers", "base_area", "extra_registers",
                         "enlarged_area", "penalty", "penalty_percent"]))
