"""Ablation — the value of *concurrent* register/BIST/interconnect assignment.

The paper's central design decision is solving the three assignments in one
ILP.  This ablation freezes the system register assignment to a conventional
left-edge binding (what a sequential flow would do) and lets the ILP optimise
only the remaining BIST and interconnect decisions, then compares the optimal
areas.  The concurrent formulation must win or tie on every circuit, and the
gap is the quantitative value of the paper's idea.
"""

import pytest

from repro.circuits import get_circuit
from repro.core import AdvBistSynthesizer, FormulationOptions
from repro.hls import left_edge_binding
from repro.reporting import format_table

from _bench_utils import record, run_once

#: The ablation runs on the circuits that solve quickly enough to do the
#: sweep twice; the conclusion is the same on the rest.
ABLATION_CIRCUITS = ["tseng", "fir6", "dct4"]


@pytest.mark.parametrize("circuit", ABLATION_CIRCUITS)
def test_ablation_concurrent_vs_fixed_binding(benchmark, circuit, time_limit):
    def run():
        graph = get_circuit(circuit)
        k = len(graph.module_ids)

        concurrent = AdvBistSynthesizer(graph, time_limit=time_limit)
        reference_area = concurrent.synthesize_reference().area().total
        concurrent_design = concurrent.synthesize(k)

        fixed_options = FormulationOptions(
            fixed_register_assignment=left_edge_binding(graph).assignment
        )
        fixed = AdvBistSynthesizer(graph, options=fixed_options, time_limit=time_limit)
        fixed_design = fixed.synthesize(k)
        return reference_area, concurrent_design, fixed_design

    reference_area, concurrent_design, fixed_design = run_once(benchmark, run)

    assert concurrent_design.verify().ok and fixed_design.verify().ok
    concurrent_area = concurrent_design.area().total
    fixed_area = fixed_design.area().total
    if concurrent_design.optimal and fixed_design.optimal:
        assert concurrent_area <= fixed_area + 1e-9

    rows = [{
        "circuit": circuit,
        "variant": "concurrent (paper)",
        "area": concurrent_area,
        "overhead_percent": round(concurrent_design.overhead_vs(reference_area), 1),
        "optimal": concurrent_design.optimal,
    }, {
        "circuit": circuit,
        "variant": "fixed left-edge binding",
        "area": fixed_area,
        "overhead_percent": round(fixed_design.overhead_vs(reference_area), 1),
        "optimal": fixed_design.optimal,
    }]
    record(f"Ablation: concurrent vs fixed register binding — {circuit}",
           format_table(rows, ["circuit", "variant", "area", "overhead_percent", "optimal"]))
