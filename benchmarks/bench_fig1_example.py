"""Figure 1 — the running example's DFG and minimal data path.

Rebuilds the Fig. 1(a) DFG, checks that the structural quantities quoted in
section 2 hold (8 variables, 4 operations, 3 registers, 2 modules, the
R0/R1/R2 grouping being conflict-free), and synthesizes its optimal reference
data path, which is the Fig. 1(b) structure.
"""

from repro.circuits import fig1
from repro.core import ReferenceFormulation
from repro.dfg import check_register_assignment, minimum_register_count
from repro.reporting import format_table

from _bench_utils import record, run_once


def test_fig1_example(benchmark, time_limit):
    def synthesize():
        graph = fig1.build()
        reference = ReferenceFormulation(graph).solve(time_limit=time_limit)
        return graph, reference

    graph, reference = run_once(benchmark, synthesize)

    # Section 2 quantities.
    assert len(graph.variable_ids) == 8
    assert len(graph.operation_ids) == 4
    assert len(graph.module_ids) == 2
    assert minimum_register_count(graph) == 3
    # The paper's example register grouping is a feasible assignment.
    paper_grouping = {0: 0, 4: 0, 1: 1, 3: 1, 6: 1, 2: 2, 5: 2, 7: 2}
    assert check_register_assignment(graph, paper_grouping) == []

    design = reference.design
    assert design is not None and reference.solution.proven_optimal
    assert design.area().register_count == 3

    rows = [{
        "quantity": "operations", "value": len(graph.operation_ids),
    }, {
        "quantity": "variables", "value": len(graph.variable_ids),
    }, {
        "quantity": "registers (min)", "value": minimum_register_count(graph),
    }, {
        "quantity": "modules", "value": len(graph.module_ids),
    }, {
        "quantity": "reference area [transistors]", "value": design.area().total,
    }]
    record("Figure 1 (running example)", format_table(rows, ["quantity", "value"]))
