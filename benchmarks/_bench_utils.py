"""Helpers shared by the benchmark modules (result recording, single-run timing)."""

from __future__ import annotations

import os
from pathlib import Path

#: Per-ILP-solve time limit in seconds (the paper allowed 24 CPU hours).
TIME_LIMIT = float(os.environ.get("REPRO_BENCH_TIME_LIMIT", "45"))

#: The six circuits of the paper's evaluation, in Table 2/3 order.
PAPER_CIRCUITS = ["tseng", "paulin", "fir6", "iir3", "dct4", "wavelet6"]

RESULTS_PATH = Path(__file__).with_name("results.txt")


def record(section: str, text: str) -> None:
    """Print a result block and append it to benchmarks/results.txt."""
    block = f"\n===== {section} =====\n{text}\n"
    print(block)
    with RESULTS_PATH.open("a", encoding="utf-8") as handle:
        handle.write(block)


def run_once(benchmark, func):
    """Run a callable exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
