"""Repo-root pytest configuration shared by tests/ and the src doctests.

The doctest items collected from ``src/repro`` (see ``pytest.ini``) run
outside ``tests/conftest.py``'s scope, so the design-cache isolation has
to live here: any doctest example that touches a :class:`Session` or
engine must never write into the user's real ``~/.cache/repro-advbist``.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _isolated_design_cache_everywhere(tmp_path, monkeypatch):
    """Point the on-disk design cache at a per-test temp dir, repo-wide."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "design-cache"))
